"""Edge-event stream utilities for the streaming engine.

The engine consumes raw :class:`~repro.graph.dynamic.EdgeEvent` streams;
these helpers bridge the two worlds the rest of the repository lives in:

* :func:`normalize_events` — accept ``(u, v, t)`` tuples alongside
  ``EdgeEvent`` objects and time-sort them stably (the exact convention
  of ``DynamicNetwork.from_edge_stream``);
* :func:`split_stream_at_cutoffs` — window a stream by the same inclusive
  cut-off semantics the snapshot builder uses, so "flush once per
  window" reproduces snapshot mode event for event;
* :func:`network_to_events` — synthesise an event stream from an already
  materialised snapshot sequence (adds *and* removes), which lets the
  CLI/benchmarks stream any registered dataset.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.graph.diff import diff_snapshots
from repro.graph.dynamic import DynamicNetwork, EdgeEvent, TimedEdge, coerce_event


def normalize_events(
    events: Iterable[EdgeEvent | TimedEdge],
) -> list[EdgeEvent]:
    """Coerce tuples to ``EdgeEvent`` and stable-sort by timestamp.

    Stability matters: events sharing a timestamp keep their original
    relative order, which fixes the graph's node/neighbour insertion
    order and therefore the exact walk RNG trajectory downstream.
    """
    normalized = [coerce_event(e) for e in events]
    normalized.sort(key=lambda e: e.time)
    return normalized


def _oriented(edge: frozenset) -> tuple:
    """Canonical ``(u, v)`` orientation of a frozenset edge.

    frozenset iteration order depends on hash randomisation for string
    node ids; orienting by ``repr`` keeps the emitted event stream — and
    therefore node insertion order and the walk RNG trajectory —
    identical across runs.
    """
    members = sorted(edge, key=repr)
    if len(members) == 1:  # self-loop
        return members[0], members[0]
    return members[0], members[1]


def _edge_sort_key(pair: tuple) -> tuple[str, str]:
    return (repr(pair[0]), repr(pair[1]))


def split_stream_at_cutoffs(
    events: Iterable[EdgeEvent | TimedEdge],
    cutoffs: Sequence[float],
) -> list[list[EdgeEvent]]:
    """Window a stream by inclusive cut-offs, one window per cut-off.

    Mirrors ``DynamicNetwork.from_edge_stream``: window ``k`` holds the
    events with ``cutoffs[k-1] < time <= cutoffs[k]``; events after the
    final cut-off are dropped. Feeding each window to
    :meth:`repro.streaming.StreamingGloDyNE.ingest_many` followed by a
    ``flush()`` replays snapshot mode exactly.
    """
    if list(cutoffs) != sorted(set(cutoffs)):
        raise ValueError("cutoffs must be strictly increasing")
    normalized = normalize_events(events)
    times = [e.time for e in normalized]
    windows: list[list[EdgeEvent]] = []
    cursor = 0
    for cutoff in cutoffs:
        advance = bisect_right(times, cutoff, lo=cursor)
        windows.append(normalized[cursor:advance])
        cursor = advance
    return windows


def network_to_events(network: DynamicNetwork) -> list[EdgeEvent]:
    """Derive an edge-event stream from a snapshot sequence.

    Snapshot ``0`` becomes ``add`` events at ``t = 0``; every later
    snapshot contributes its diff against the previous one — edge
    additions carry the new snapshot's weight, removals cover deleted
    edges and edges lost to node deletions, and a persisting edge whose
    *weight* changed re-emits an ``add`` (overwrite semantics). Events
    within one step are ordered deterministically (sorted by repr) so
    repeated conversions of the same network yield identical streams.

    Limitation: an edge stream cannot express node *identity* removal.
    Replaying the returned events reproduces every snapshot's edge set
    and weights exactly, but a node whose last edge was removed survives
    as an isolated "ghost" — the same semantics as batch
    ``DynamicNetwork.from_edge_stream``. For deletion-heavy networks
    (AS733-style), restrict to the LCC downstream
    (``StreamingGloDyNE(restrict_to_lcc=True)`` or
    ``from_edge_stream(..., restrict_to_lcc=True)``), which is what the
    paper's pipeline does anyway and which excludes isolated ghosts.
    """
    events: list[EdgeEvent] = []
    previous = None
    for t, snapshot in enumerate(network):
        if previous is None:
            initial = [
                _oriented(frozenset((u, v))) + (w,)
                for u, v, w in snapshot.weighted_edges()
            ]
            for u, v, w in sorted(initial, key=_edge_sort_key):
                events.append(EdgeEvent(u, v, float(t), weight=w))
        else:
            diff = diff_snapshots(previous, snapshot)
            removed = [_oriented(e) for e in diff.removed_edges]
            for u, v in sorted(removed, key=_edge_sort_key):
                events.append(EdgeEvent(u, v, float(t), kind="remove"))
            added = [_oriented(e) for e in diff.added_edges]
            for u, v in sorted(added, key=_edge_sort_key):
                events.append(
                    EdgeEvent(u, v, float(t), weight=snapshot.edge_weight(u, v, 1.0))
                )
            # Weight-only changes on persisting edges: diff_snapshots is
            # presence-based and misses them; re-emit as overwrites.
            changed = [
                _oriented(frozenset((u, v))) + (w,)
                for u, v, w in snapshot.weighted_edges()
                if previous.has_edge(u, v) and previous.edge_weight(u, v) != w
            ]
            for u, v, w in sorted(changed, key=_edge_sort_key):
                events.append(EdgeEvent(u, v, float(t), weight=w))
        previous = snapshot
    return events
