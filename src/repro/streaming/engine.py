"""StreamingGloDyNE: edge-event ingestion in front of the warm SGNS stage.

Snapshot mode (``GloDyNE.fit``/``update``) assumes someone else already
materialised a snapshot sequence. This engine removes that assumption:
it consumes :class:`~repro.graph.dynamic.EdgeEvent` objects one at a
time (or in micro-batches), maintains
:class:`~repro.streaming.state.IncrementalGraphState`, and *flushes* —
runs one GloDyNE online step — when a :class:`FlushPolicy` trigger
fires or the caller asks explicitly.

A flush hands the model three precomputed artefacts instead of letting
it recompute them from scratch:

* the current graph (the live mutable adjacency, not a copy);
* the frozen CSR from the incremental mirror (no per-edge rebuild);
* the Eq. (3) per-node change counts from the window accumulator (no
  full-graph ``diff_snapshots``).

With the manual policy and one flush per snapshot window, the engine is
*bit-for-bit* equivalent to snapshot-mode GloDyNE under the same seed —
the golden regression tests enforce this. The payoff is the other
direction: many small flushes over a large graph, where the incremental
path does O(delta) Python work per event instead of O(E) per flush.

When to prefer streaming over snapshot mode
-------------------------------------------
* events arrive continuously and embeddings should refresh on a budget
  (every N events / every few seconds / after enough accumulated change)
  rather than at externally imposed snapshot boundaries;
* the graph is large and deltas are small, so per-flush full
  ``diff_snapshots`` + ``CSRAdjacency.from_graph`` rebuilds dominate;
* you want flush latency and events/sec as first-class observability
  (see :class:`FlushResult` and ``benchmarks/bench_streaming_throughput``).

Snapshot mode remains the right tool for offline evaluation over a fixed
snapshot sequence (the paper's setting) and for LCC-restricted pipelines,
where the engine falls back to the diff-based change path anyway.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.base import EmbeddingMap
from repro.core.glodyne import GloDyNE, StepTrace
from repro.graph.dynamic import EdgeEvent, TimedEdge, coerce_event
from repro.pipeline.stages import publish_version
from repro.streaming.state import IncrementalGraphState

Node = Hashable


@dataclass(frozen=True)
class FlushPolicy:
    """Automatic flush triggers; ``None`` disables a trigger.

    * ``max_events`` — flush once this many events accumulated in the
      window (event-count trigger);
    * ``max_seconds`` — flush when the wall-clock age of the window
      exceeds this many seconds. Checked on ingestion (the engine has no
      background thread), so a silent stream does not flush on its own;
    * ``max_touched_edges`` — the accumulated-change trigger: flush once
      this many *distinct* edges were touched in the window. Unlike
      ``max_events`` it is robust to hot edges being re-written many
      times.

    All triggers disabled (the default) means flushes only happen via
    :meth:`StreamingGloDyNE.flush` — the flush-per-snapshot mode.
    """

    max_events: int | None = None
    max_seconds: float | None = None
    max_touched_edges: int | None = None

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        if self.max_touched_edges is not None and self.max_touched_edges < 1:
            raise ValueError("max_touched_edges must be >= 1")

    def trigger(
        self,
        pending_events: int,
        window_seconds: float,
        touched_edges: int,
    ) -> str | None:
        """Name of the first satisfied trigger, or ``None``."""
        if self.max_events is not None and pending_events >= self.max_events:
            return "events"
        if self.max_seconds is not None and window_seconds >= self.max_seconds:
            return "seconds"
        if (
            self.max_touched_edges is not None
            and touched_edges >= self.max_touched_edges
        ):
            return "change"
        return None


@dataclass
class FlushResult:
    """Outcome of one flush (one GloDyNE offline/online step)."""

    time_step: int
    embeddings: EmbeddingMap
    trace: StepTrace
    num_events: int
    num_nodes: int
    num_edges: int
    seconds: float
    trigger: str = "manual"


class StreamingGloDyNE:
    """GloDyNE behind an edge-event ingestion front-end.

    Parameters
    ----------
    model:
        A pre-built :class:`~repro.core.glodyne.GloDyNE`; mutually
        exclusive with keyword overrides.
    policy:
        Automatic flush triggers (default: manual flushes only).
    restrict_to_lcc:
        Embed only the largest connected component at each flush, like
        the paper's snapshot pipeline. On this path the engine cannot
        hand precomputed changes/CSR to the model (the LCC node set is a
        moving subset of the full state), so it falls back to the
        diff-based snapshot machinery.
    publish_to:
        Optional :class:`repro.serving.EmbeddingStore`. Every flush then
        publishes its embeddings as a new store version, tagged with the
        flush trigger/event-count/latency metadata — the producer side
        of the serving subsystem. Set the hook here *or* on the model,
        not both (both set would publish each flush twice).
    seed, **overrides:
        Forwarded to :class:`GloDyNE` when ``model`` is not given, e.g.
        ``StreamingGloDyNE(dim=64, alpha=0.1, seed=0)``. This includes
        the parallel hot-path knobs (``workers=4`` walks each flush's
        selected nodes on the shared-memory process pool; ``workers=1``
        keeps flushes bit-identical to the serial engine).
    """

    def __init__(
        self,
        model: GloDyNE | None = None,
        *,
        policy: FlushPolicy | None = None,
        restrict_to_lcc: bool = False,
        publish_to=None,
        seed: int | None = None,
        **overrides,
    ) -> None:
        if model is not None and (overrides or seed is not None):
            raise ValueError("pass either a model or keyword overrides")
        self.model = model if model is not None else GloDyNE(seed=seed, **overrides)
        self.policy = policy if policy is not None else FlushPolicy()
        self.publish_to = publish_to
        self.restrict_to_lcc = restrict_to_lcc
        self.state = IncrementalGraphState()
        self.last_result: FlushResult | None = None
        self.num_flushes = 0
        self._prev_nonunit = False
        self._window_opened = time.monotonic()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, event: EdgeEvent | TimedEdge) -> FlushResult | None:
        """Apply one event; flush and return the result if a trigger fires."""
        event = coerce_event(event)
        if self.state.window_events == 0:
            # The wall-clock window ages from its first event, not from
            # engine construction / the previous flush — an idle engine
            # must not flush a degenerate 1-event window on wake-up.
            self._window_opened = time.monotonic()
        self.state.apply(event)
        if self.state.graph.number_of_nodes() == 0:
            # A stream can open with no-op removes; there is nothing to
            # embed yet, so no trigger may fire.
            return None
        trigger = self.policy.trigger(
            self.state.window_events,
            time.monotonic() - self._window_opened,
            self.state.num_touched_edges,
        )
        if trigger is not None:
            return self._flush(trigger)
        return None

    def ingest_many(
        self, events: Iterable[EdgeEvent | TimedEdge]
    ) -> list[FlushResult]:
        """Apply a micro-batch in order; returns every triggered flush."""
        results = []
        for event in events:
            result = self.ingest(event)
            if result is not None:
                results.append(result)
        return results

    def flush(self) -> FlushResult:
        """Force a flush of the open window (flush-per-snapshot mode)."""
        return self._flush("manual")

    # ------------------------------------------------------------------
    @property
    def embeddings(self) -> EmbeddingMap | None:
        """Embeddings from the most recent flush (None before the first)."""
        return self.last_result.embeddings if self.last_result else None

    @property
    def total_events(self) -> int:
        """Events ingested over the engine's lifetime."""
        return self.state.events_applied

    @property
    def pending_events(self) -> int:
        """Events ingested since the last flush."""
        return self.state.window_events

    # ------------------------------------------------------------------
    def _use_weighted_changes(self) -> bool:
        configured = self.model.config.weighted_changes
        if configured is not None:
            return configured
        # Snapshot mode scans both snapshots with is_unweighted(); the
        # incremental counter answers the same question in O(1) for the
        # current graph, OR-ed with the status at the previous flush.
        return self.state.has_nonunit_weights or self._prev_nonunit

    def _flush(self, trigger: str) -> FlushResult:
        if self.state.graph.number_of_nodes() == 0:
            raise ValueError("cannot flush before any edge event was ingested")
        started = time.perf_counter()
        window_events = self.state.window_events
        snapshot = self.state.snapshot_view(self.restrict_to_lcc)
        if self.restrict_to_lcc:
            # LCC view is a moving subset of the full state: let the model
            # recompute diff + CSR on the restricted graph.
            changes = None
            csr = None
            touched = None
        else:
            # The window accumulator is only a valid stand-in for the
            # snapshot diff once the model's previous graph is one this
            # engine produced. Before the engine's first flush a warm
            # hand-off model carries a `previous` the accumulator never
            # saw, so fall back to the model's own diff path for that
            # flush only.
            warm_handoff = self.num_flushes == 0 and self.model.previous is not None
            changes = (
                self.state.window_node_changes(self._use_weighted_changes())
                if self.model.previous is not None and not warm_handoff
                else None
            )
            csr = self.state.csr.to_csr()
            # The accumulated touched-node set (endpoints of every edge
            # the window saw, including reverted ones) is the incremental
            # partitioner's dirty set for this flush.
            touched = (
                self.state.window_touched_nodes()
                if changes is not None
                else None
            )
        embeddings = self.model.update(
            snapshot, changes=changes, csr=csr, touched=touched
        )
        self.state.reset_window()
        self._prev_nonunit = self.state.has_nonunit_weights
        result = FlushResult(
            time_step=self.model.time_step - 1,
            embeddings=embeddings,
            trace=self.model.last_trace,
            num_events=window_events,
            num_nodes=snapshot.number_of_nodes(),
            # LCC views need the O(V) scan; the full-graph path reads the
            # state's O(1) counter instead.
            num_edges=(
                snapshot.number_of_edges()
                if self.restrict_to_lcc
                else self.state.num_edges
            ),
            seconds=time.perf_counter() - started,
            trigger=trigger,
        )
        self.last_result = result
        self.num_flushes += 1
        if self.publish_to is not None:
            # The model's aligned (nodes, matrix) pair skips the store's
            # per-node dict re-stacking on the serving hot path; the
            # shared publish helper attaches Step 1's partition cells
            # exactly as snapshot mode's PublishStage does.
            nodes, matrix = self.model.last_embedding
            publish_version(
                self.publish_to,
                nodes,
                matrix,
                time_step=result.time_step,
                metadata={
                    "source": "stream",
                    "trigger": trigger,
                    "num_events": window_events,
                    "num_selected": result.trace.num_selected,
                    "flush_seconds": result.seconds,
                },
                partition=self.model.last_partition,
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingGloDyNE(flushes={self.num_flushes}, "
            f"events={self.total_events}, pending={self.pending_events})"
        )
