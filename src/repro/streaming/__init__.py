"""Streaming subsystem: edge-event ingestion with incremental graph state.

Instead of materialising full snapshots and recomputing diffs/CSR per
step, :class:`StreamingGloDyNE` consumes raw edge events, maintains the
graph incrementally (:mod:`repro.streaming.state`) and flushes into the
warm-SGNS online stage on configurable triggers
(:class:`FlushPolicy`). See :mod:`repro.streaming.engine` for when to
prefer streaming over snapshot mode.
"""

from repro.streaming.engine import FlushPolicy, FlushResult, StreamingGloDyNE
from repro.streaming.events import (
    network_to_events,
    normalize_events,
    split_stream_at_cutoffs,
)
from repro.streaming.state import (
    ChangeAccumulator,
    IncrementalCSR,
    IncrementalGraphState,
)

__all__ = [
    "ChangeAccumulator",
    "FlushPolicy",
    "FlushResult",
    "IncrementalCSR",
    "IncrementalGraphState",
    "StreamingGloDyNE",
    "network_to_events",
    "normalize_events",
    "split_stream_at_cutoffs",
]
