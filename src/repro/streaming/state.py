"""Incremental graph state for the streaming engine.

The snapshot pipeline rebuilds everything per step: ``diff_snapshots``
walks both full edge sets and ``CSRAdjacency.from_graph`` re-freezes the
whole adjacency in a per-edge Python loop. For an event stream whose
deltas are tiny relative to the graph, both are pure overhead — exactly
the per-step retraining cost GloDyNE argues against at the embedding
level. This module maintains the same three artefacts *incrementally*:

* :class:`IncrementalCSR` — a mutable CSR with per-row slack that applies
  add/remove deltas in O(degree) and compacts into an immutable
  :class:`~repro.graph.csr.CSRAdjacency` with one vectorised gather, no
  per-edge Python loop;
* :class:`ChangeAccumulator` — per-window edge baselines that reduce to
  the per-node change counts |ΔE^t_i| of Eq. (3) without diffing two full
  snapshots (an edge added then removed inside one window correctly
  cancels to zero change);
* :class:`IncrementalGraphState` — composes both with a live
  :class:`~repro.graph.static.Graph` mirror so that a flush can hand the
  GloDyNE online stage exactly what ``diff_snapshots`` +
  ``CSRAdjacency.from_graph`` would have produced, bit for bit.

Ordering is part of the contract: the CSR freeze order equals Graph dict
insertion order (overwrite keeps position, remove shifts left, re-add
appends), which is what makes streaming-mode embeddings reproduce
snapshot-mode embeddings exactly under a fixed seed.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.graph.components import largest_connected_component
from repro.graph.csr import CSRAdjacency
from repro.graph.dynamic import EdgeEvent
from repro.graph.static import Graph

Node = Hashable

_INITIAL_ROW_CAP = 4

# Same tolerance as Graph.is_unweighted: the weighted-change auto-detection
# on the streaming path must agree with snapshot mode's per-flush scan or
# near-unit weights would silently flip the change formula.
_UNIT_WEIGHT_TOLERANCE = 1e-12


def _is_nonunit(weight: float) -> bool:
    return abs(weight - 1.0) > _UNIT_WEIGHT_TOLERANCE


class IncrementalCSR:
    """Mutable CSR adjacency with per-row slack capacity.

    Rows live inside two shared pools (``indices``/``weights``); each row
    owns a slice ``[start, start + capacity)`` of which the first
    ``length`` entries are live. Appending into a full row relocates it to
    the pool tail with doubled capacity (classic amortised doubling — the
    abandoned slots are bounded by a constant factor of the live entries).

    Neighbour ordering mirrors ``dict`` semantics so that :meth:`to_csr`
    is indistinguishable from ``CSRAdjacency.from_graph`` on the mirrored
    :class:`~repro.graph.static.Graph`: overwriting a weight keeps the
    neighbour's position, removing shifts the row tail left, re-adding
    appends at the end.
    """

    __slots__ = (
        "_nodes",
        "_index_of",
        "_starts",
        "_lengths",
        "_caps",
        "_indices_pool",
        "_weights_pool",
        "_tail",
    )

    def __init__(self, initial_pool: int = 1024) -> None:
        self._nodes: list[Node] = []
        self._index_of: dict[Node, int] = {}
        self._starts: list[int] = []
        self._lengths: list[int] = []
        self._caps: list[int] = []
        self._indices_pool = np.empty(max(initial_pool, 16), dtype=np.int64)
        self._weights_pool = np.empty(max(initial_pool, 16), dtype=np.float64)
        self._tail = 0

    # ------------------------------------------------------------------
    # pool management
    # ------------------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        needed = self._tail + extra
        if needed <= self._indices_pool.size:
            return
        new_size = self._indices_pool.size
        while new_size < needed:
            new_size *= 2
        indices = np.empty(new_size, dtype=np.int64)
        weights = np.empty(new_size, dtype=np.float64)
        indices[: self._tail] = self._indices_pool[: self._tail]
        weights[: self._tail] = self._weights_pool[: self._tail]
        self._indices_pool = indices
        self._weights_pool = weights

    def _relocate(self, row: int, new_cap: int) -> None:
        """Move a full row to the pool tail with ``new_cap`` capacity."""
        self._reserve(new_cap)
        start, length = self._starts[row], self._lengths[row]
        tail = self._tail
        self._indices_pool[tail: tail + length] = self._indices_pool[
            start: start + length
        ]
        self._weights_pool[tail: tail + length] = self._weights_pool[
            start: start + length
        ]
        self._starts[row] = tail
        self._caps[row] = new_cap
        self._tail = tail + new_cap

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def ensure_node(self, node: Node) -> int:
        """Return the index of ``node``, registering it on first sight."""
        idx = self._index_of.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._nodes.append(node)
            self._index_of[node] = idx
            self._reserve(_INITIAL_ROW_CAP)
            self._starts.append(self._tail)
            self._lengths.append(0)
            self._caps.append(_INITIAL_ROW_CAP)
            self._tail += _INITIAL_ROW_CAP
        return idx

    def _find(self, row: int, neighbor_idx: int) -> int:
        """Position of ``neighbor_idx`` within ``row`` (-1 when absent)."""
        start, length = self._starts[row], self._lengths[row]
        hits = np.nonzero(
            self._indices_pool[start: start + length] == neighbor_idx
        )[0]
        return int(hits[0]) if hits.size else -1

    def _set_directed(self, row: int, neighbor_idx: int, weight: float) -> None:
        pos = self._find(row, neighbor_idx)
        start = self._starts[row]
        if pos >= 0:
            self._weights_pool[start + pos] = weight
            return
        length = self._lengths[row]
        if length == self._caps[row]:
            self._relocate(row, max(_INITIAL_ROW_CAP, 2 * self._caps[row]))
            start = self._starts[row]
        self._indices_pool[start + length] = neighbor_idx
        self._weights_pool[start + length] = weight
        self._lengths[row] = length + 1

    def _remove_directed(self, row: int, neighbor_idx: int) -> bool:
        pos = self._find(row, neighbor_idx)
        if pos < 0:
            return False
        start, length = self._starts[row], self._lengths[row]
        self._indices_pool[start + pos: start + length - 1] = self._indices_pool[
            start + pos + 1: start + length
        ]
        self._weights_pool[start + pos: start + length - 1] = self._weights_pool[
            start + pos + 1: start + length
        ]
        self._lengths[row] = length - 1
        return True

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Insert or overwrite the undirected edge ``(u, v)``."""
        u_idx = self.ensure_node(u)
        v_idx = self.ensure_node(v)
        self._set_directed(u_idx, v_idx, weight)
        if u_idx != v_idx:
            self._set_directed(v_idx, u_idx, weight)

    def discard_edge(self, u: Node, v: Node) -> bool:
        """Delete the edge if present. Returns True when one was removed."""
        u_idx = self._index_of.get(u)
        v_idx = self._index_of.get(v)
        if u_idx is None or v_idx is None:
            return False
        removed = self._remove_directed(u_idx, v_idx)
        if removed and u_idx != v_idx:
            self._remove_directed(v_idx, u_idx)
        return removed

    # ------------------------------------------------------------------
    # queries / freeze
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_entries(self) -> int:
        """Directed entry count (each undirected edge stored twice)."""
        return sum(self._lengths)

    def degree(self, node: Node) -> int:
        idx = self._index_of.get(node)
        return 0 if idx is None else self._lengths[idx]

    def to_csr(self) -> CSRAdjacency:
        """Compact into an immutable :class:`CSRAdjacency`.

        One vectorised gather over the pools — O(nodes + entries) numpy
        work with no per-edge Python loop, versus ``from_graph``'s
        dict-walking per-edge loop.
        """
        n = len(self._nodes)
        lengths = np.asarray(self._lengths, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        total = int(indptr[-1])
        if total:
            starts = np.asarray(self._starts, dtype=np.int64)
            # Output slot j of row i maps to pool slot starts[i] + (j - indptr[i]).
            src = np.repeat(starts - indptr[:-1], lengths) + np.arange(total)
            indices = self._indices_pool[src]
            weights = self._weights_pool[src]
        else:
            indices = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        return CSRAdjacency(self._nodes, indptr, indices, weights)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IncrementalCSR(nodes={self.num_nodes}, "
            f"entries={self.num_entries}, pool={self._indices_pool.size})"
        )


class ChangeAccumulator:
    """Per-window edge baselines reducing to Eq. (3) node changes.

    For every edge touched since the window opened, the accumulator
    remembers its state (presence + weight) *at the window start*. At
    flush time each touched edge is compared against its current state:

    * unweighted mode mirrors ``diff_snapshots(...).node_changes`` — an
      edge whose presence flipped credits both endpoints with 1 (a
      self-loop credits its node twice, as the snapshot diff does);
    * weighted mode mirrors ``weighted_node_changes`` (footnote 3) — each
      endpoint is credited with |w_now - w_baseline| (a self-loop once).

    Edges that return to their baseline state inside the window (add then
    remove, or a weight overwritten back) contribute nothing, exactly as
    they would vanish from a snapshot-to-snapshot diff.
    """

    __slots__ = ("_baseline",)

    def __init__(self) -> None:
        # frozenset({u, v}) -> (present_at_window_start, weight_at_window_start)
        self._baseline: dict[frozenset, tuple[bool, float]] = {}

    def record(self, u: Node, v: Node, present: bool, weight: float) -> None:
        """Remember the pre-event state of ``(u, v)`` on first touch."""
        key = frozenset((u, v))
        if key not in self._baseline:
            self._baseline[key] = (present, weight if present else 0.0)

    @property
    def num_touched_edges(self) -> int:
        """Distinct edges touched since the window opened."""
        return len(self._baseline)

    def touched_nodes(self) -> set[Node]:
        """Endpoints of every edge touched since the window opened.

        Deliberately a *superset* of the nodes with non-zero Eq. (3)
        change: an edge added then removed inside the window cancels out
        of :meth:`node_changes`, but its endpoints still belong in the
        incremental partitioner's dirty set (re-examining an unchanged
        boundary vertex is a no-op, missing a changed one is not).
        """
        nodes: set[Node] = set()
        for key in self._baseline:
            nodes.update(key)
        return nodes

    def node_changes(
        self, graph: Graph, weighted: bool
    ) -> dict[Node, float]:
        """Reduce the window baselines to per-node change counts."""
        changes: dict[Node, float] = {}
        for key, (was_present, base_weight) in self._baseline.items():
            if len(key) == 1:
                (u,) = key
                v = u
            else:
                u, v = key
            is_present = graph.has_edge(u, v)
            if weighted:
                now_weight = graph.edge_weight(u, v) if is_present else 0.0
                delta = abs(now_weight - base_weight)
                if delta == 0.0:
                    continue
                changes[u] = changes.get(u, 0.0) + delta
                if v != u:
                    changes[v] = changes.get(v, 0.0) + delta
            else:
                if was_present == is_present:
                    continue
                changes[u] = changes.get(u, 0) + 1
                changes[v] = changes.get(v, 0) + 1
        return changes

    def clear(self) -> None:
        self._baseline.clear()

    def __len__(self) -> int:
        return len(self._baseline)


class IncrementalGraphState:
    """Event-sourced graph state: live adjacency + CSR + change window.

    ``apply`` consumes one :class:`~repro.graph.dynamic.EdgeEvent` and
    keeps three structures coherent: the mutable :class:`Graph` (the
    source of truth the engine snapshots from), the
    :class:`IncrementalCSR` mirror (frozen per flush without full
    reconstruction), and the :class:`ChangeAccumulator` for the current
    flush window. A running non-unit-weight counter stands in for the
    O(E) ``Graph.is_unweighted`` scan when auto-detecting the weighted
    change formula.
    """

    __slots__ = (
        "graph",
        "csr",
        "accumulator",
        "_num_nonunit",
        "_num_edges",
        "events_applied",
        "window_events",
    )

    def __init__(self) -> None:
        self.graph = Graph()
        self.csr = IncrementalCSR()
        self.accumulator = ChangeAccumulator()
        self._num_nonunit = 0
        self._num_edges = 0
        self.events_applied = 0
        self.window_events = 0

    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> None:
        """Apply one add/remove event to all mirrored structures."""
        u, v = event.u, event.v
        present = self.graph.has_edge(u, v)
        before = self.graph.edge_weight(u, v) if present else 0.0
        if event.kind == "add":
            self.accumulator.record(u, v, present, before)
            weight = event.weight
            if present and _is_nonunit(before):
                self._num_nonunit -= 1
            if _is_nonunit(weight):
                self._num_nonunit += 1
            if not present:
                self._num_edges += 1
            self.graph.add_edge(u, v, weight)
            self.csr.add_edge(u, v, weight)
        elif present:
            # No-op removes (absent edge) record no baseline: they touch
            # nothing, and counting them would fire spurious change-trigger
            # flushes on feeds with duplicate/late removes.
            self.accumulator.record(u, v, present, before)
            self.graph.remove_edge(u, v)
            self.csr.discard_edge(u, v)
            if _is_nonunit(before):
                self._num_nonunit -= 1
            self._num_edges -= 1
        self.events_applied += 1
        self.window_events += 1

    def apply_many(self, events) -> None:
        """Apply a micro-batch of events in order."""
        for event in events:
            self.apply(event)

    # ------------------------------------------------------------------
    @property
    def has_nonunit_weights(self) -> bool:
        """True when any live edge carries a weight other than 1.0."""
        return self._num_nonunit > 0

    @property
    def num_edges(self) -> int:
        """Live undirected edge count, maintained in O(1) per event."""
        return self._num_edges

    @property
    def num_touched_edges(self) -> int:
        return self.accumulator.num_touched_edges

    def snapshot_view(self, restrict_to_lcc: bool = False) -> Graph:
        """The current graph (live object — do not mutate), or its LCC."""
        if restrict_to_lcc:
            return largest_connected_component(self.graph)
        return self.graph

    def window_node_changes(self, weighted: bool) -> dict[Node, float]:
        """Eq. (3) per-node changes accumulated over the open window."""
        return self.accumulator.node_changes(self.graph, weighted)

    def window_touched_nodes(self) -> set[Node]:
        """Nodes incident to any edge touched in the open window.

        The Step 1 dirty set a flush hands to the incremental
        partitioner (:class:`repro.partition.IncrementalPartitioner`).
        """
        return self.accumulator.touched_nodes()

    def reset_window(self) -> None:
        """Close the flush window: clear baselines and the event counter."""
        self.accumulator.clear()
        self.window_events = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IncrementalGraphState(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, "
            f"window_events={self.window_events})"
        )
