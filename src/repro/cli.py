"""Command-line interface: embed, evaluate, and inspect dynamic networks.

Usage::

    python -m repro datasets
    python -m repro embed --dataset elec-sim --method glodyne --out emb.npz
    python -m repro evaluate --dataset elec-sim --method glodyne --task gr
    python -m repro analyze --dataset fbw-sim
    python -m repro stream --dataset elec-sim --flush-events 400
    python -m repro serve --dataset elec-sim --store store.npz
    python -m repro serve-http --store main=store.npz --port 8080
    python -m repro query --store store.npz --node 3 --k 10

The CLI wires together the same public APIs the examples use; it exists so
a downstream user can reproduce a single cell of a paper table without
writing code.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import (
    BCGDGlobal,
    BCGDLocal,
    DynGEM,
    DynLINE,
    DynTriad,
    GloDyNE,
    SGNSIncrement,
    SGNSRetrain,
    SGNSStatic,
    TNE,
)
from repro.base import DynamicEmbeddingMethod
from repro.datasets import list_datasets, load_dataset
from repro.experiments import render_table, run_method
from repro.pipeline import EngineSpec, add_engine_flags, engine_spec_from_args
from repro.tasks import (
    graph_reconstruction_over_time,
    link_prediction_over_time,
    node_classification_over_time,
)

# Hyper-parameter presets: "paper" mirrors §5.1.2 (r=10, l=80, s=10, q=5,
# 5 epochs), "quick" is a laptop-friendly smoke profile.
PROFILES = {
    "paper": dict(
        walk=dict(num_walks=10, walk_length=80, window_size=10, epochs=5),
        bcgd_iterations=100,
        dyngem=dict(epochs=40, warm_epochs=15),
    ),
    "quick": dict(
        walk=dict(num_walks=3, walk_length=12, window_size=4, epochs=2),
        bcgd_iterations=30,
        dyngem=dict(epochs=10, warm_epochs=4),
    ),
}


def _builders(profile: dict, engine: EngineSpec | None = None) -> dict:
    """Per-method constructors for one profile and one engine spec.

    The engine knobs (workers, kernel backend, chunk sizing, prefetch,
    incremental partition maintenance) come from the single
    :class:`~repro.pipeline.EngineSpec` — every Skip-Gram-walk method
    takes the same ``engine.kwargs()`` dict, so a new engine knob is one
    new ``EngineSpec`` field plus the constructor parameter that consumes
    it. The dense baselines have no parallel hot path and ignore the
    spec entirely.
    """
    engine = engine if engine is not None else EngineSpec()
    walk = profile["walk"]
    iters = profile["bcgd_iterations"]
    dyngem = profile["dyngem"]
    walk_par = dict(walk, **engine.kwargs())
    return {
        "glodyne": lambda dim, seed: GloDyNE(
            dim=dim, alpha=0.1, seed=seed, **walk_par
        ),
        "sgns-static": lambda dim, seed: SGNSStatic(
            dim=dim, seed=seed, **walk_par
        ),
        "sgns-retrain": lambda dim, seed: SGNSRetrain(
            dim=dim, seed=seed, **walk_par
        ),
        "sgns-increment": lambda dim, seed: SGNSIncrement(
            dim=dim, seed=seed, **walk_par
        ),
        "bcgd-global": lambda dim, seed: BCGDGlobal(
            dim=dim, iterations=iters, seed=seed
        ),
        "bcgd-local": lambda dim, seed: BCGDLocal(
            dim=dim, iterations=iters, seed=seed
        ),
        "dyngem": lambda dim, seed: DynGEM(dim=dim, seed=seed, **dyngem),
        "dynline": lambda dim, seed: DynLINE(dim=dim, seed=seed),
        "dyntriad": lambda dim, seed: DynTriad(dim=dim, seed=seed),
        "tne": lambda dim, seed: TNE(dim=dim, seed=seed, **walk_par),
    }


METHOD_NAMES = sorted(_builders(PROFILES["quick"]))

#: Flag respellings for subcommands where a canonical engine flag is
#: taken: the serving commands already use ``--backend``/``--index`` for
#: the serving *index*, so the kernel backend surfaces there as
#: ``--kernel-backend``.
ENGINE_FLAG_RENAMES: dict[str, dict[str, str]] = {
    "serve": {"backend": "--kernel-backend"},
    "serve-http": {"backend": "--kernel-backend"},
}

#: ``{subcommand: {EngineSpec field: flag}}`` actually registered by the
#: last :func:`make_parser` call — the spec↔CLI drift gate in
#: ``tests/test_pipeline_spec.py`` checks it both ways.
ENGINE_FLAGS_BY_COMMAND: dict[str, dict[str, str]] = {}


def build_method(
    name: str, dim: int, seed: int, profile: str = "quick",
    engine: EngineSpec | None = None,
) -> DynamicEmbeddingMethod:
    """Construct one method by CLI name, profile preset and engine spec."""
    try:
        builders = _builders(PROFILES[profile], engine=engine)
    except KeyError:
        raise SystemExit(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        ) from None
    try:
        return builders[name](dim, seed)
    except KeyError:
        raise SystemExit(
            f"unknown method {name!r}; choose from {METHOD_NAMES}"
        ) from None


def cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    from repro.datasets import get_spec

    for name in list_datasets():
        spec = get_spec(name)
        rows.append(
            [
                name,
                spec.paper_dataset,
                "yes" if spec.has_labels else "no",
                "yes" if spec.has_deletions else "no",
                str(spec.default_snapshots),
                spec.description,
            ]
        )
    print(
        render_table(
            ["name", "paper", "labels", "deletions", "snapshots", "description"],
            rows,
            title="registered simulated datasets",
        )
    )
    return 0


def cmd_embed(args: argparse.Namespace) -> int:
    network = load_dataset(
        args.dataset, scale=args.scale, seed=args.data_seed,
        snapshots=args.snapshots,
    )
    method = build_method(
        args.method, args.dim, args.seed, args.profile,
        engine=engine_spec_from_args(args),
    )
    started = time.perf_counter()
    result = run_method(method, network)
    elapsed = time.perf_counter() - started
    if not result.ok:
        print(f"n/a: {result.not_available}", file=sys.stderr)
        return 1
    print(
        f"embedded {network.name}: {network.num_snapshots} snapshots "
        f"in {elapsed:.2f}s ({result.total_seconds:.2f}s embedding time)"
    )
    traces = [t for t in result.step_traces if t is not None]
    if traces:
        print(
            f"per step: {np.mean([t.num_selected for t in traces]):.0f} "
            f"selected nodes, {np.mean([t.num_pairs for t in traces]):,.0f} "
            "training pairs (mean)"
        )
    stages = result.stage_seconds
    if stages:
        print(
            "stage seconds: "
            + ", ".join(f"{name} {secs:.2f}" for name, secs in stages.items())
        )
    if args.out:
        final = result.embeddings[-1]
        nodes = sorted(final, key=repr)
        np.savez(
            args.out,
            nodes=np.array([str(n) for n in nodes]),
            embeddings=np.stack([final[n] for n in nodes]),
        )
        print(f"wrote final-snapshot embeddings -> {args.out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    network = load_dataset(
        args.dataset, scale=args.scale, seed=args.data_seed,
        snapshots=args.snapshots,
    )
    method = build_method(
        args.method, args.dim, args.seed, args.profile,
        engine=engine_spec_from_args(args),
    )
    result = run_method(method, network)
    if not result.ok:
        print(f"n/a: {result.not_available}", file=sys.stderr)
        return 1
    rng = np.random.default_rng(args.seed)
    rows = []
    tasks = args.task.split(",")
    if "gr" in tasks:
        scores = graph_reconstruction_over_time(
            result.embeddings, network, [1, 5, 10, 20, 40]
        )
        rows.extend(
            [f"GR MeanP@{k}", f"{v * 100:.2f}%"] for k, v in scores.items()
        )
    if "lp" in tasks:
        auc = link_prediction_over_time(result.embeddings, network, rng)
        rows.append(["LP AUC", f"{auc * 100:.2f}%"])
    if "nc" in tasks:
        if not network.labels:
            rows.append(["NC", "dataset has no labels"])
        else:
            for ratio in (0.5, 0.7, 0.9):
                scores = node_classification_over_time(
                    result.embeddings, network, ratio, rng, min_labeled=20
                )
                rows.append(
                    [
                        f"NC F1 @ {ratio}",
                        f"micro {scores.micro_f1 * 100:.2f}% / "
                        f"macro {scores.macro_f1 * 100:.2f}%",
                    ]
                )
    rows.append(["embed time", f"{result.total_seconds:.2f}s"])
    print(
        render_table(
            ["metric", "value"],
            rows,
            title=f"{args.method} on {args.dataset}",
        )
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import inactive_subnetworks, proximity_change_profile

    network = load_dataset(
        args.dataset, scale=args.scale, seed=args.data_seed,
        snapshots=args.snapshots,
    )
    rng = np.random.default_rng(0)
    report = inactive_subnetworks(
        network, cell_size=args.cell_size, min_streak=5, rng=rng
    )
    print(
        f"{network.name}: {report.num_cells} cells, "
        f"{report.cells_with_streak} with a >=5-step quiet streak "
        f"({report.inactive_fraction * 100:.0f}%)"
    )
    for length, count in sorted(report.streak_histogram.items()):
        print(f"  quiet {length} steps: {count} sub-networks")
    profile = proximity_change_profile(network, max_sources=32, rng=rng)
    per_edge = [p.change_per_edge for p in profile if p.num_changed_edges]
    if per_edge:
        print(
            f"Δsp per changed edge: mean {np.mean(per_edge):.1f}, "
            f"max {np.max(per_edge):.1f}"
        )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Replay a dataset as an edge-event stream through StreamingGloDyNE."""
    from repro.streaming import FlushPolicy, StreamingGloDyNE, network_to_events

    network = load_dataset(
        args.dataset, scale=args.scale, seed=args.data_seed,
        snapshots=args.snapshots,
    )
    events = network_to_events(network)
    walk = PROFILES[args.profile]["walk"]
    try:
        policy = FlushPolicy(
            max_events=args.flush_events or None,
            max_seconds=args.flush_seconds,
            max_touched_edges=args.flush_changed_edges,
        )
    except ValueError as error:
        raise SystemExit(f"invalid flush policy: {error}") from None
    engine = StreamingGloDyNE(
        seed=args.seed, policy=policy, dim=args.dim, alpha=0.1,
        **engine_spec_from_args(args).kwargs(), **walk,
    )
    started = time.perf_counter()
    results = engine.ingest_many(events)
    if engine.pending_events:
        results.append(engine.flush())
    elapsed = time.perf_counter() - started

    rows = [
        [
            str(r.time_step),
            r.trigger,
            str(r.num_events),
            str(r.num_nodes),
            str(r.trace.num_selected),
            str(r.trace.num_pairs),
            f"{r.seconds * 1e3:.1f}ms",
        ]
        for r in results
    ]
    print(
        render_table(
            ["flush", "trigger", "events", "nodes", "selected", "pairs",
             "latency"],
            rows,
            title=f"streamed {network.name}: {len(events)} events",
        )
    )
    print(
        f"{len(events)} events in {elapsed:.2f}s "
        f"({len(events) / max(elapsed, 1e-9):,.0f} events/sec end-to-end, "
        f"{len(results)} flushes)"
    )
    return 0


def _parse_node(raw: str):
    """CLI node ids: JSON when it parses (ints stay ints), else raw str."""
    from repro.server.http import parse_node_id

    return parse_node_id(raw)


def _parse_compact(spec: str) -> tuple[int, int | None]:
    """Parse a ``--compact HEAD_N[:EVERY_K]`` spec into policy knobs."""
    head, sep, every = spec.partition(":")
    try:
        head_n = int(head)
        every_k = int(every) if sep else None
    except ValueError:
        raise SystemExit(
            f"bad --compact spec {spec!r}: expected HEAD_N or HEAD_N:EVERY_K "
            "(e.g. 4 or 4:10)"
        ) from None
    return head_n, every_k


def cmd_serve(args: argparse.Namespace) -> int:
    """Stream a dataset into a versioned embedding store and save it."""
    from repro.serving import EmbeddingStore, save_store
    from repro.streaming import FlushPolicy, StreamingGloDyNE, network_to_events

    network = load_dataset(
        args.dataset, scale=args.scale, seed=args.data_seed,
        snapshots=args.snapshots,
    )
    events = network_to_events(network)
    walk = PROFILES[args.profile]["walk"]
    store = EmbeddingStore(store_dir=args.store_dir)
    engine = StreamingGloDyNE(
        seed=args.seed, policy=FlushPolicy(max_events=args.flush_events),
        publish_to=store, dim=args.dim, alpha=0.1,
        **engine_spec_from_args(args, ENGINE_FLAG_RENAMES["serve"]).kwargs(),
        **walk,
    )
    started = time.perf_counter()
    engine.ingest_many(events)
    if engine.pending_events:
        engine.flush()
    elapsed = time.perf_counter() - started

    rows = [
        [
            str(record.version),
            str(record.time_step),
            str(record.num_nodes),
            str(record.dim),
            str(record.metadata.get("trigger", "?")),
            str(record.metadata.get("num_events", "?")),
        ]
        for record in store
    ]
    print(
        render_table(
            ["version", "step", "nodes", "dim", "trigger", "events"],
            rows,
            title=f"served {network.name}: {len(events)} events -> "
            f"{store.num_versions} versions in {elapsed:.2f}s",
        )
    )
    if args.compact:
        head_n, every_k = _parse_compact(args.compact)
        dropped = store.compact(keep_head_n=head_n, keep_every_k=every_k)
        print(
            f"compacted store: dropped {len(dropped)} version(s) "
            f"({store.num_versions - len(store.tombstones)} kept)"
        )
    save_store(store, args.store)
    print(f"wrote versioned store -> {args.store}")
    if args.index:
        # Smoke-validate the saved store against the chosen serving
        # backend before handing it to serve-http / query.
        service = _make_service(store, args.index, args.quantize)
        node = store.latest.nodes[0]
        k = min(3, max(1, store.latest.num_nodes - 1))
        neighbors = service.query_knn(node, k=k)
        shown = ", ".join(f"{n!r}:{s:.3f}" for n, s in neighbors)
        print(f"smoke query [{service.index.backend_name}] {node!r} -> {shown}")
    return 0


def _make_service(store, backend: str, quantized: str | None):
    """Build an :class:`EmbeddingService`, mapping bad knob combos to exit 2."""
    from repro.serving import EmbeddingService

    try:
        return EmbeddingService(store, backend=backend, quantized=quantized)
    except ValueError as error:
        raise SystemExit(f"bad backend configuration: {error}") from None


def cmd_query(args: argparse.Namespace) -> int:
    """Query a saved embedding store: kNN lookups and edge scoring."""
    from repro.serving import load_store

    try:
        store = load_store(args.store)
    except (OSError, ValueError) as error:
        print(f"cannot load store {args.store!r}: {error}", file=sys.stderr)
        return 1
    service = _make_service(store, args.backend, args.quantize)
    try:
        record = store.version(args.version)
    except LookupError as error:
        print(str(error), file=sys.stderr)
        return 1
    print(
        f"store {args.store}: {store.num_versions} versions, querying "
        f"version {record.version} ({record.num_nodes} nodes, "
        f"dim {record.dim}, backend {service.index.backend_name})"
    )
    status = 0
    if args.node is not None:
        node = _parse_node(args.node)
        try:
            neighbors = service.query_knn(
                node, k=args.k, version=args.version
            )
        except KeyError:
            print(f"node {node!r} not in version {record.version}",
                  file=sys.stderr)
            return 1
        rows = [[repr(n), f"{score:.4f}"] for n, score in neighbors]
        print(
            render_table(
                ["node", "cosine"], rows,
                title=f"top-{args.k} similar to {node!r}",
            )
        )
    if args.edge:
        u, v = (_parse_node(raw) for raw in args.edge)
        try:
            score = service.score_edge(
                u, v, version=args.version, metric=args.metric
            )
        except KeyError as error:
            print(f"cannot score edge: {error}", file=sys.stderr)
            return 1
        print(f"score({u!r}, {v!r}) [{args.metric}] = {score:.4f}")
    if args.node is None and not args.edge:
        print("nothing to do: pass --node and/or --edge", file=sys.stderr)
        status = 2
    return status


def _http_services(args: argparse.Namespace) -> dict:
    """Build the ``{name: EmbeddingService}`` map ``serve-http`` fronts.

    Each ``--store [NAME=]PATH`` loads a saved versioned store (NAME
    defaults to the file stem); with no ``--store`` the command streams
    ``--dataset`` into a fresh in-memory store first, so a bare
    ``repro serve-http`` serves something real out of the box.

    ``--store-dir`` tiers every loaded store: cold versions spill to
    mmap files under ``<store-dir>/<name>``, so serving a long history
    costs RAM for the hot window only. ``--compact`` applies a GC pass
    per store after load; ``--quantize`` switches candidate scans to
    the int8 codec (exact float32 rerank keeps results bit-identical
    top-k for the rerank depth).
    """
    from pathlib import Path

    from repro.serving import EmbeddingStore, load_store

    compact = _parse_compact(args.compact) if args.compact else None
    services: dict = {}
    for spec in args.store or []:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = Path(spec).stem, spec
        if not name:
            raise SystemExit(f"empty graph name in --store {spec!r}")
        if name in services:
            raise SystemExit(f"duplicate graph name {name!r} in --store")
        spill_dir = Path(args.store_dir) / name if args.store_dir else None
        try:
            store = load_store(path, store_dir=spill_dir)
        except (OSError, ValueError) as error:
            raise SystemExit(f"cannot load store {path!r}: {error}") from None
        if compact is not None:
            store.compact(keep_head_n=compact[0], keep_every_k=compact[1])
        services[name] = _make_service(store, args.backend, args.quantize)
    if not services:
        from repro.streaming import (
            FlushPolicy,
            StreamingGloDyNE,
            network_to_events,
        )

        network = load_dataset(
            args.dataset, scale=args.scale, seed=args.data_seed,
            snapshots=args.snapshots,
        )
        spill_dir = (
            Path(args.store_dir) / args.dataset if args.store_dir else None
        )
        store = EmbeddingStore(store_dir=spill_dir)
        engine = StreamingGloDyNE(
            seed=args.seed, policy=FlushPolicy(max_events=args.flush_events),
            publish_to=store, dim=args.dim, alpha=0.1,
            **engine_spec_from_args(
                args, ENGINE_FLAG_RENAMES["serve-http"]
            ).kwargs(),
            **PROFILES[args.profile]["walk"],
        )
        engine.ingest_many(network_to_events(network))
        if engine.pending_events:
            engine.flush()
        if compact is not None:
            store.compact(keep_head_n=compact[0], keep_every_k=compact[1])
        services[args.dataset] = _make_service(
            store, args.backend, args.quantize
        )
    return services


def cmd_serve_http(args: argparse.Namespace) -> int:
    """Serve embedding stores over HTTP with request micro-batching."""
    import asyncio

    from repro.server import EmbeddingDaemon

    services = _http_services(args)
    # 0 (or negative) disables the idle-connection timeout: keep-alive
    # clients may then hold sockets open indefinitely.
    idle_timeout = args.idle_timeout if args.idle_timeout > 0 else None
    if args.shards > 1:
        return _serve_http_sharded(args, services, idle_timeout)
    daemon = EmbeddingDaemon(
        services,
        max_batch=args.max_batch,
        window=args.batch_window_ms / 1e3,
        # 0 (or negative) disables the idle poller rather than spinning
        # the event loop; swaps then happen on dispatch / POST reload.
        reload_interval=(
            args.reload_interval if args.reload_interval > 0 else None
        ),
        idle_timeout=idle_timeout,
    )

    async def run() -> None:
        await daemon.start(host=args.host, port=args.port)
        print(
            f"serving {len(services)} graph(s) on "
            f"http://{daemon.host}:{daemon.port} "
            f"(batch window {args.batch_window_ms}ms, max {args.max_batch})"
        )
        for name, service in services.items():
            print(
                f"  /g/{name}/knn  [{service.store.num_versions} versions, "
                f"backend {service.index.backend_name}]"
            )
        print("endpoints: /healthz /stats "
              "/g/<name>/{knn,score,embed,versions,reload}")
        try:
            if args.max_seconds is not None:
                await asyncio.sleep(args.max_seconds)
            else:
                await daemon.serve_forever()
        finally:
            await daemon.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted — shutting down")
    return 0


def _serve_http_sharded(
    args: argparse.Namespace, services: dict, idle_timeout: float | None
) -> int:
    """The ``serve-http --shards N`` flow: split, spawn, route, supervise.

    Each loaded store splits into ``N`` disjoint shard views
    (partition cells when published, stable node hash otherwise); one
    worker process serves each shard and a :class:`ShardRouter` front
    door scatter-gathers queries across them. Teardown terminates the
    workers even when the router path raises.
    """
    import asyncio

    from repro.serving.shards import split_store
    from repro.server import ShardRouter, shutdown_workers, spawn_workers

    graphs: dict = {}
    per_worker: list[dict] = [{} for _ in range(args.shards)]
    for name, service in services.items():
        try:
            shard_stores, assignment = split_store(service.store, args.shards)
        except ValueError as error:
            raise SystemExit(f"cannot shard graph {name!r}: {error}") from None
        graphs[name] = (service.store, assignment)
        for shard_id, shard_store in enumerate(shard_stores):
            per_worker[shard_id][name] = shard_store
    handles = spawn_workers(
        per_worker,
        host="127.0.0.1",
        backend=args.backend,
        max_batch=args.max_batch,
        window=args.batch_window_ms / 1e3,
    )
    try:
        router = ShardRouter(
            graphs,
            [handle.spec for handle in handles],
            idle_timeout=idle_timeout,
        )

        async def run() -> None:
            await router.start(host=args.host, port=args.port)
            print(
                f"routing {len(graphs)} graph(s) across {args.shards} shard "
                f"workers on http://{router.host}:{router.port}"
            )
            for handle in handles:
                print(
                    f"  {handle.spec.name} -> "
                    f"http://{handle.spec.host}:{handle.spec.port} "
                    f"(pid {handle.process.pid})"
                )
            print("endpoints: /healthz /stats "
                  "/g/<name>/{knn,score,embed,versions,reload}")
            try:
                if args.max_seconds is not None:
                    await asyncio.sleep(args.max_seconds)
                else:
                    await router.serve_forever()
            finally:
                await router.close()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("interrupted — shutting down")
    finally:
        shutdown_workers(handles)
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GloDyNE reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list simulated datasets")

    def engine_flags(p: argparse.ArgumentParser, command: str) -> None:
        """Generate the engine-knob flags for one subcommand.

        One :func:`~repro.pipeline.add_engine_flags` call per subcommand
        — the flags, help text and defaults all come from
        :class:`~repro.pipeline.EngineSpec` field metadata, so an engine
        knob added there appears on every one of these subcommands with
        no CLI edit.
        """
        ENGINE_FLAGS_BY_COMMAND[command] = add_engine_flags(
            p, ENGINE_FLAG_RENAMES.get(command)
        )

    def common(p: argparse.ArgumentParser, command: str) -> None:
        p.add_argument("--dataset", default="elec-sim")
        p.add_argument("--method", default="glodyne")
        p.add_argument("--dim", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--data-seed", type=int, default=0)
        p.add_argument("--scale", type=float, default=0.5)
        p.add_argument("--snapshots", type=int, default=None)
        p.add_argument(
            "--profile", default="quick", choices=sorted(PROFILES),
            help="hyper-parameter preset (paper = §5.1.2 settings)",
        )
        engine_flags(p, command)

    embed = sub.add_parser("embed", help="embed a dynamic network")
    common(embed, "embed")
    embed.add_argument("--out", default=None, help="write final Z^T as .npz")

    evaluate = sub.add_parser("evaluate", help="embed + run downstream tasks")
    common(evaluate, "evaluate")
    evaluate.add_argument(
        "--task", default="gr,lp", help="comma list from {gr,lp,nc}"
    )

    analyze = sub.add_parser("analyze", help="Figure 1 style analyses")
    analyze.add_argument("--dataset", default="fbw-sim")
    analyze.add_argument("--data-seed", type=int, default=0)
    analyze.add_argument("--scale", type=float, default=0.5)
    analyze.add_argument("--snapshots", type=int, default=None)
    analyze.add_argument("--cell-size", type=int, default=15)

    stream = sub.add_parser(
        "stream", help="replay a dataset as edge events through the "
        "streaming engine",
    )
    stream.add_argument("--dataset", default="elec-sim")
    stream.add_argument("--dim", type=int, default=32)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--data-seed", type=int, default=0)
    stream.add_argument("--scale", type=float, default=0.5)
    stream.add_argument("--snapshots", type=int, default=None)
    stream.add_argument(
        "--profile", default="quick", choices=sorted(PROFILES),
        help="hyper-parameter preset for the underlying GloDyNE model",
    )
    engine_flags(stream, "stream")
    stream.add_argument(
        "--flush-events", type=int, default=400,
        help="flush after this many events (None-able via 0)",
    )
    stream.add_argument(
        "--flush-seconds", type=float, default=None,
        help="flush when the open window is older than this many seconds",
    )
    stream.add_argument(
        "--flush-changed-edges", type=int, default=None,
        help="flush after this many distinct edges changed",
    )

    serve = sub.add_parser(
        "serve", help="stream a dataset into a versioned embedding store",
    )
    serve.add_argument("--dataset", default="elec-sim")
    serve.add_argument("--dim", type=int, default=32)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--data-seed", type=int, default=0)
    serve.add_argument("--scale", type=float, default=0.5)
    serve.add_argument("--snapshots", type=int, default=None)
    serve.add_argument(
        "--profile", default="quick", choices=sorted(PROFILES),
        help="hyper-parameter preset for the underlying GloDyNE model",
    )
    engine_flags(serve, "serve")
    serve.add_argument(
        "--flush-events", type=int, default=400,
        help="publish a new store version after this many events",
    )
    serve.add_argument(
        "--store", default="store.npz",
        help="output path for the versioned store (.npz)",
    )
    serve.add_argument(
        "--index", default=None, choices=["lsh", "exact", "ivf"],
        help="after saving, smoke-validate the store against this serving "
        "backend with one kNN query",
    )
    serve.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="tier the store: spill cold versions to mmap files under DIR "
        "(default: keep every version resident in RAM)",
    )
    serve.add_argument(
        "--compact", default=None, metavar="HEAD_N[:EVERY_K]",
        help="GC the store before saving: keep the newest HEAD_N versions "
        "plus every EVERY_K-th (compacted ids tombstone, never renumber)",
    )
    serve.add_argument(
        "--quantize", default=None, choices=["int8"],
        help="candidate-scan codec for the --index smoke query (int8 scan "
        "+ exact float32 rerank; needs --index exact or ivf)",
    )

    serve_http = sub.add_parser(
        "serve-http",
        help="HTTP daemon over saved stores with request micro-batching",
    )
    serve_http.add_argument(
        "--store", action="append", metavar="[NAME=]PATH", default=None,
        help="versioned store .npz to serve under /g/<NAME>/ (repeatable; "
        "NAME defaults to the file stem)",
    )
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument(
        "--port", type=int, default=8080, help="0 binds an ephemeral port",
    )
    serve_http.add_argument(
        "--backend", "--index", dest="backend", default="lsh",
        choices=["lsh", "exact", "ivf"],
        help="serving index backend (--index is an alias); ivf reuses "
        "published partition cells as its coarse quantizer",
    )
    serve_http.add_argument(
        "--batch-window-ms", type=float, default=0.0,
        help="extra milliseconds a lone request waits for company "
        "(0 = coalesce per event-loop tick, no added latency)",
    )
    serve_http.add_argument(
        "--max-batch", type=int, default=64,
        help="dispatch once this many requests coalesced (1 disables "
        "micro-batching)",
    )
    serve_http.add_argument(
        "--reload-interval", type=float, default=0.5,
        help="idle hot-reload poll period in seconds (0 disables the "
        "poller; swaps still happen on query dispatch)",
    )
    serve_http.add_argument(
        "--max-seconds", type=float, default=None,
        help="serve for this long then exit cleanly (smoke tests; "
        "default: forever)",
    )
    serve_http.add_argument(
        "--shards", type=int, default=1,
        help="run N shard worker processes behind a scatter-gather "
        "router (1 = single-process daemon); shards follow published "
        "partition cells when present, else a stable node hash",
    )
    serve_http.add_argument(
        "--idle-timeout", type=float, default=60.0,
        help="seconds an idle keep-alive connection may wait between "
        "requests before being answered 408 and closed (0 disables)",
    )
    # With no --store, stream --dataset into an in-memory store first.
    serve_http.add_argument("--dataset", default="elec-sim")
    serve_http.add_argument("--dim", type=int, default=32)
    serve_http.add_argument("--seed", type=int, default=0)
    serve_http.add_argument("--data-seed", type=int, default=0)
    serve_http.add_argument("--scale", type=float, default=0.5)
    serve_http.add_argument("--snapshots", type=int, default=None)
    serve_http.add_argument(
        "--profile", default="quick", choices=sorted(PROFILES),
    )
    engine_flags(serve_http, "serve-http")
    serve_http.add_argument("--flush-events", type=int, default=400)
    serve_http.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="tier every served store: spill cold versions to mmap files "
        "under DIR/<name> (default: all versions resident in RAM)",
    )
    serve_http.add_argument(
        "--compact", default=None, metavar="HEAD_N[:EVERY_K]",
        help="GC each store after load: keep the newest HEAD_N versions "
        "plus every EVERY_K-th (compacted ids tombstone, never renumber)",
    )
    serve_http.add_argument(
        "--quantize", default=None, choices=["int8"],
        help="int8 candidate scans with exact float32 rerank (needs "
        "--backend exact or ivf)",
    )

    query = sub.add_parser(
        "query", help="kNN lookups / edge scoring against a saved store",
    )
    query.add_argument("--store", required=True, help="store .npz to load")
    query.add_argument(
        "--node", default=None,
        help="node id to look up (JSON-parsed: 3 is an int, '\"a\"' a str)",
    )
    query.add_argument("--k", type=int, default=10)
    query.add_argument(
        "--edge", nargs=2, metavar=("U", "V"), default=None,
        help="score a node pair instead of / as well as a kNN lookup",
    )
    query.add_argument(
        "--metric", default="cosine", choices=["cosine", "dot"],
    )
    query.add_argument(
        "--backend", "--index", dest="backend", default="lsh",
        choices=["lsh", "exact", "ivf"],
        help="serving index backend (--index is an alias)",
    )
    query.add_argument(
        "--version", type=int, default=None,
        help="store version to query (default: latest; negatives count back)",
    )
    query.add_argument(
        "--quantize", default=None, choices=["int8"],
        help="int8 candidate scans with exact float32 rerank (needs "
        "--backend exact or ivf)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "embed": cmd_embed,
        "evaluate": cmd_evaluate,
        "analyze": cmd_analyze,
        "stream": cmd_stream,
        "serve": cmd_serve,
        "serve-http": cmd_serve_http,
        "query": cmd_query,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
