"""EmbeddingService: the query-side facade over store + index.

The store records versions; the index answers kNN at the *latest*
version; the service ties them together with the operations an online
consumer actually calls:

* :meth:`~EmbeddingService.query_knn` — similar-node lookup with an LRU
  result cache keyed on ``(version, node, k)`` (a version bump naturally
  invalidates: new keys, old entries age out);
* :meth:`~EmbeddingService.query_knn_batch` — the micro-batched variant
  behind the serving daemon (:mod:`repro.server`): one refresh, one
  cache sweep, one ``query_many`` index dispatch for a whole batch;
* :meth:`~EmbeddingService.score_edge` — link scoring for a node pair
  (cosine via the :mod:`repro.tasks.link_prediction` scorer, or raw dot);
* :meth:`~EmbeddingService.embed_at` — time-travel read of any retained
  version;
* :meth:`~EmbeddingService.refresh` — incremental index sync after the
  trainer published a new version (only moved rows re-hash).

Queries pinned to a historical version bypass the index and scan that
version's matrix exactly — history is small and cold, the latest version
is where the traffic goes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Sequence

import numpy as np

from repro.base import EmbeddingMap
from repro.serving.index import (
    BruteForceIndex,
    IVFIndex,
    LSHIndex,
    _cosine_scores,
    _top_k,
    _unit_vector,
    unit_rows,
)
from repro.serving.store import EmbeddingStore
from repro.tasks.link_prediction import score_pairs

Node = Hashable

_BACKENDS = ("lsh", "exact", "ivf")


class EmbeddingService:
    """Versioned kNN / link-scoring service over an :class:`EmbeddingStore`.

    Parameters
    ----------
    store:
        The system of record; the service never mutates it.
    backend:
        ``"lsh"`` (default), ``"exact"``, or ``"ivf"``; ignored when
        ``index`` is given. The IVF backend is *partition-aware*: when a
        published version carries ``partition_cells`` metadata (GloDyNE's
        Step 1 cells), the service forwards it as the index's coarse
        quantizer; otherwise the index falls back to its frozen anchors.
    quantized:
        ``"int8"`` builds the backend with the int8 candidate-scan
        codec (:mod:`repro.serving.storage`): the scan pre-ranks rows
        from quantized codes and exact-reranks the top pool, so
        returned scores stay exact float32 cosines. Supported by the
        ``exact`` and ``ivf`` backends (``ValueError`` on ``lsh``,
        whose candidate gather is already sub-linear); ignored when
        ``index`` is given.
    index:
        A pre-configured index instance (e.g. an :class:`LSHIndex` with
        tuned table/bit counts, or an :class:`IVFIndex` with a tuned
        ``nprobe``).
    refresh_tolerance:
        Max-abs per-row movement below which a row is *not* re-hashed on
        :meth:`refresh`. 0.0 re-hashes on any change; serving-grade
        defaults keep it tiny but non-zero so float32 jitter does not
        force work.
    cache_size:
        Entries in the LRU query cache (0 disables caching).
    unit_cache_size:
        Versions whose normalised matrix the time-travel path may keep
        memoised at once (0 disables the memo). Each entry pins a full
        float32 matrix, so this bounds time-travel memory; eviction is
        LRU.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        *,
        backend: str = "lsh",
        quantized: str | None = None,
        index: BruteForceIndex | LSHIndex | IVFIndex | None = None,
        refresh_tolerance: float = 1e-7,
        cache_size: int = 1024,
        unit_cache_size: int = 4,
    ) -> None:
        if index is None:
            if backend not in _BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; choose from {_BACKENDS}"
                )
            if backend == "lsh":
                if quantized is not None:
                    raise ValueError(
                        "quantized scans need the exact or ivf backend; "
                        "lsh already gathers sub-linear candidate sets"
                    )
                index = LSHIndex()
            elif backend == "exact":
                index = BruteForceIndex(quantized=quantized)
            else:
                index = IVFIndex(quantized=quantized)
        if unit_cache_size < 0:
            raise ValueError("unit_cache_size must be >= 0")
        self.store = store
        self.index = index
        self.refresh_tolerance = float(refresh_tolerance)
        self.cache_size = int(cache_size)
        self.unit_cache_size = int(unit_cache_size)
        self._cache: OrderedDict[tuple, list] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        # Normalised matrices of recently time-travelled versions
        # (immutable once published, so a size-bounded LRU is safe).
        self._unit_cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._indexed_version: int | None = None
        # Rows at the last full build — when the store outgrows this by
        # 4x, an auto-sized index re-builds with re-derived sizing
        # (table bits/center, anchor count) instead of degrading.
        self._sized_rows = 0

    # ------------------------------------------------------------------
    # index lifecycle
    # ------------------------------------------------------------------
    @property
    def indexed_version(self) -> int | None:
        """Store version the index currently serves (None before first)."""
        return self._indexed_version

    def refresh(self) -> int:
        """Sync the index to the store's latest version.

        Incremental: only rows that moved beyond ``refresh_tolerance``
        (plus new nodes) re-hash / re-assign. A version with *fewer*
        rows than the indexed one (node deletions shrank the snapshot)
        falls back to a full rebuild — index rows are positional and
        cannot shrink incrementally. Returns the number of rows touched;
        0 when already current.

        Partition-aware backends (``accepts_assignment``) additionally
        receive the version's published ``partition_cells`` metadata —
        the per-row cell ids GloDyNE's Step 1 partitioner emitted — so
        the IVF cell layout follows the trainer's own partition.

        An empty store (the trainer has not published yet — a shard
        worker can start before its first publish) is a clean no-op, not
        an error: there is nothing to index, so 0 rows were touched.
        """
        if self.store.num_versions == 0:
            return 0
        latest = self.store.latest
        if self._indexed_version == latest.version:
            return 0
        if (
            getattr(self.index, "auto_sized", False)
            and self._sized_rows
            and latest.num_nodes > 4 * self._sized_rows
        ):
            # The store outgrew the first build's auto-sizing: start a
            # fresh index so the data-derived sizing (table bits and
            # hashing center, or anchor count) re-derives from the
            # current distribution instead of degrading.
            self.index = self.index.fresh_like()
            self._indexed_version = None
        assignment = (
            self._partition_assignment(latest)
            if getattr(self.index, "accepts_assignment", False)
            else None
        )
        if self._indexed_version is None or latest.num_nodes < self.index.num_rows:
            if assignment is not None:
                self.index.build(latest.matrix, assignment=assignment)
            else:
                self.index.build(latest.matrix)
            touched = latest.num_nodes
            self._sized_rows = latest.num_nodes
        elif getattr(self.index, "accepts_assignment", False):
            touched = self.index.refresh(
                latest.matrix,
                tolerance=self.refresh_tolerance,
                assignment=assignment,
            )
        else:
            touched = self.index.refresh(
                latest.matrix, tolerance=self.refresh_tolerance
            )
        self._indexed_version = latest.version
        return touched

    def _partition_assignment(self, record) -> np.ndarray | None:
        """Per-row cell ids from a version's ``partition_cells`` metadata.

        Returns ``None`` when the version carries no partition (offline
        flushes, non-S4 strategies) or a stale one whose length no
        longer matches the row count — the index then keeps its current
        layout (IVF anchor mode / incremental rule).
        """
        cells = record.metadata.get("partition_cells")
        if cells is None:
            return None
        cells = np.asarray(cells, dtype=np.int64)
        if cells.shape[0] != record.num_nodes:
            return None
        return cells

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_knn(
        self,
        node: Node,
        k: int = 10,
        *,
        version: int | None = None,
        exclude_self: bool = True,
    ) -> list[tuple[Node, float]]:
        """The ``k`` nodes most cosine-similar to ``node``.

        Parameters
        ----------
        node:
            Query node id; must exist at the queried version
            (``KeyError`` otherwise).
        k:
            Neighbours to return, ``>= 1``.
        version:
            ``None`` follows the store's head through the index
            (refreshing it incrementally when the store advanced — the
            index is built lazily on the first such query); an explicit
            version time-travels via an exact scan of that version's
            matrix. Negative ids count back from the head.
        exclude_self:
            Drop ``node`` itself from the result.

        Returns
        -------
        list of (node, float)
            ``(node, cosine)`` pairs, best first; scores are float32
            cosines widened to Python floats.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if version is None:
            self.refresh()  # lazy build / incremental follow-head; no-op
        record = self.store.version(version)
        # A pinned version scans exactly while the index path may be
        # approximate — results from the two paths must never share a
        # cache entry, even for the same (version, node, k).
        use_index = version is None and self._indexed_version == record.version
        key = (record.version, node, k, exclude_self, use_index)
        if self.cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return list(cached)
            self.cache_misses += 1
        query_vector = record.vector(node)  # KeyError for unknown nodes
        fetch = k + 1 if exclude_self else k
        if use_index:
            rows, scores = self.index.query(query_vector, fetch)
        else:
            rows, scores = self._exact_scan(record, query_vector, fetch)
        result = self._materialise(record, node, rows, scores, k, exclude_self)
        if self.cache_size:
            self._cache_put(key, result)
        return list(result)

    def query_knn_batch(
        self,
        nodes: Sequence[Node],
        k: int = 10,
        *,
        exclude_self: bool = True,
        refresh: bool = True,
    ) -> list[list[tuple[Node, float]]]:
        """Batched :meth:`query_knn` at the store head — one index dispatch.

        Parameters
        ----------
        nodes:
            Query node ids; each must exist in the latest version
            (``KeyError`` otherwise, naming the first missing node).
        k:
            Neighbours per query, ``>= 1``.
        exclude_self:
            Drop each query node from its own result (the default, as in
            :meth:`query_knn`).
        refresh:
            Follow the store head before answering (the default). With
            ``False`` the batch answers at the *last indexed* version
            instead — the micro-batcher's degraded mode when a hot
            reload fails but the stale index can still serve
            (``LookupError`` when nothing has been indexed yet).

        Returns
        -------
        list of list of (node, float)
            One result list per query node, in input order — each entry
            exactly what :meth:`query_knn` returns for that node.

        Notes
        -----
        This is the dispatch target of the serving daemon's
        micro-batching (:class:`repro.server.MicroBatcher`): the
        head-follow refresh, version resolution, and cache sweep are paid
        once per batch instead of once per query, and all cache misses go
        to the index in a single :meth:`~LSHIndex.query_many` call.

        With an LSH backend the results are **bit-identical** to calling
        :meth:`query_knn` per node (``batch_matches_single``), so batched
        fills share the unbatched LRU cache. The exact backend's gemm
        batch kernel may differ from single queries in the last ulp, so
        its batched results are served but never cached — the cache must
        stay byte-coherent with :meth:`query_knn`.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        nodes = list(nodes)
        if not nodes:
            return []
        if refresh:
            self.refresh()  # lazy build / incremental follow-head; no-op
            record = self.store.version(None)
        else:
            if self._indexed_version is None:
                raise LookupError(
                    "no indexed version to serve a refresh=False batch from"
                )
            record = self.store.version(self._indexed_version)
        use_index = self._indexed_version == record.version
        results: list[list[tuple[Node, float]] | None] = [None] * len(nodes)
        misses: list[int] = []
        for i, node in enumerate(nodes):
            key = (record.version, node, k, exclude_self, use_index)
            if self.cache_size:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.cache_hits += 1
                    results[i] = list(cached)
                    continue
                self.cache_misses += 1
            misses.append(i)
        if misses:
            # KeyError for unknown nodes, before any index work.
            vectors = np.stack([record.vector(nodes[i]) for i in misses])
            fetch = k + 1 if exclude_self else k
            if use_index:
                ranked = self.index.query_many(vectors, fetch)
            else:
                ranked = [
                    self._exact_scan(record, vector, fetch)
                    for vector in vectors
                ]
            cacheable = self.cache_size and (
                not use_index or getattr(self.index, "batch_matches_single", False)
            )
            for i, (rows, scores) in zip(misses, ranked):
                node = nodes[i]
                result = self._materialise(
                    record, node, rows, scores, k, exclude_self
                )
                if cacheable:
                    key = (record.version, node, k, exclude_self, use_index)
                    self._cache_put(key, result)
                results[i] = result
        return [list(result) for result in results]

    def query_knn_vector(
        self,
        vector: np.ndarray,
        k: int = 10,
        *,
        version: int | None = None,
    ) -> list[tuple[Node, float]]:
        """The ``k`` nodes most cosine-similar to an arbitrary query vector.

        The scatter side of sharded serving (:mod:`repro.serving.shards`):
        a shard router ships the query *vector* to workers that do not
        hold the query node, so workers answer by vector, not by id.
        There is no self-node to exclude and no result caching — every
        scattered vector is distinct, so cache keys would never repeat.

        Parameters
        ----------
        vector:
            Query vector of shape ``(dim,)``; any float dtype (cast to
            float32, as :meth:`query_knn` casts stored rows).
        k:
            Neighbours to return, ``>= 1``.
        version:
            ``None`` follows the store's head through the index; an
            explicit version time-travels via the exact scan.

        Returns
        -------
        list of (node, float)
            ``(node, cosine)`` pairs, best first, ties broken by
            ascending row — bit-identical to the rows :meth:`query_knn`
            would rank for a node embedded at exactly this vector.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if version is None:
            self.refresh()  # lazy build / incremental follow-head; no-op
        record = self.store.version(version)
        vector = np.asarray(vector, dtype=np.float32).ravel()
        if vector.shape[0] != record.dim:
            raise ValueError(
                f"query vector has dim {vector.shape[0]}, "
                f"version {record.version} has dim {record.dim}"
            )
        use_index = version is None and self._indexed_version == record.version
        if use_index:
            rows, scores = self.index.query(vector, k)
        else:
            rows, scores = self._exact_scan(record, vector, k)
        return [
            (record.nodes[int(row)], float(score))
            for row, score in zip(rows, scores)
        ]

    def score_edge(
        self,
        u: Node,
        v: Node,
        *,
        version: int | None = None,
        metric: str = "cosine",
    ) -> float:
        """Similarity score of the (u, v) pair at a version.

        ``cosine`` routes through the same scorer the link-prediction
        task uses (:func:`repro.tasks.link_prediction.score_pairs`), so a
        served score is exactly the quantity Table 2 AUCs are computed
        from; ``dot`` is the unnormalised inner product.
        """
        record = self.store.version(version)
        a, b = record.vector(u), record.vector(v)
        if metric == "cosine":
            embeddings: EmbeddingMap = {u: a, v: b}
            scores, keep = score_pairs(embeddings, [(u, v)])
            assert bool(keep[0])
            return float(scores[0])
        if metric == "dot":
            return float(np.asarray(a, dtype=np.float64) @ b)
        raise ValueError(f"unknown metric {metric!r}; choose cosine or dot")

    def embed_at(
        self, version: int | None = None, *, nearest: bool = False
    ) -> EmbeddingMap:
        """Time-travel read: the full embedding map of ``version``.

        On a tiered store a cold version pages in transparently
        (bit-identical to the resident original). ``nearest=True``
        degrades a compacted-away version to the nearest kept one
        instead of raising ``LookupError`` — pin versions you must be
        able to read exactly (:meth:`EmbeddingStore.pin
        <repro.serving.store.EmbeddingStore.pin>`).
        """
        return self.store.version(version, nearest=nearest).as_map()

    # ------------------------------------------------------------------
    def _materialise(
        self,
        record,
        node: Node,
        rows: np.ndarray,
        scores: np.ndarray,
        k: int,
        exclude_self: bool,
    ) -> list[tuple[Node, float]]:
        """Ranked ``(row, score)`` arrays -> the public ``(node, float)`` list.

        Shared by the single-query and batched paths so the two can never
        drift: self-row filtering and the k-truncation happen here, once.
        """
        result: list[tuple[Node, float]] = []
        self_row = record.row_of[node]
        for row, score in zip(rows, scores):
            if exclude_self and int(row) == self_row:
                continue
            result.append((record.nodes[int(row)], float(score)))
            if len(result) == k:
                break
        return result

    def _cache_put(self, key: tuple, result: list) -> None:
        """Insert one LRU entry, evicting the oldest past ``cache_size``."""
        self._cache[key] = result
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    def _exact_scan(
        self, record, vector: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact cosine top-k against a pinned (historical) version.

        The version's normalised matrix is memoised (versions are
        immutable), so repeat time-travel queries pay the O(N*d)
        normalisation once. The memo is LRU-bounded to
        ``unit_cache_size`` entries — each pins a full float32 matrix,
        so many-version time travel must not accumulate them forever.
        """
        if not self.unit_cache_size:
            unit = unit_rows(record.matrix)
        elif (unit := self._unit_cache.get(record.version)) is None:
            unit = unit_rows(record.matrix)
            self._unit_cache[record.version] = unit
            if len(self._unit_cache) > self.unit_cache_size:
                self._unit_cache.popitem(last=False)
        else:
            self._unit_cache.move_to_end(record.version)
        # Shape-independent reduction (see index._cosine_scores): a
        # shard's slice of this matrix scores its rows exactly like the
        # full matrix does, so sharded answers merge bit-identically.
        scores = _cosine_scores(unit, _unit_vector(vector))
        rows = np.arange(scores.size, dtype=np.int64)
        best = _top_k(scores, rows, k)
        return rows[best], scores[best]

    @property
    def cache_info(self) -> dict[str, int]:
        """LRU effectiveness counters: hits, misses, entries, capacity."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "capacity": self.cache_size,
        }

    def clear_cache(self) -> None:
        """Drop every cached query result (counters are kept)."""
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EmbeddingService(backend={self.index.backend_name}, "
            f"versions={self.store.num_versions}, "
            f"indexed={self._indexed_version})"
        )
