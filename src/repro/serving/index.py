"""kNN query indexes over an embedding matrix: exact, LSH, and IVF backends.

Serving similar-node queries is the core online workload of a dynamic
embedding system (Barros et al., survey §7): given Z^t, return the k rows
most cosine-similar to a query row. Three backends share one contract:

* :class:`BruteForceIndex` — exact scan. O(N·d) per query; the ground
  truth the approximate backends are measured against.
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing
  (Charikar, 2002) with multi-table, query-directed multi-probing.
  Hashing is sign-of-projection, so cosine-similar rows collide; probing
  flips the lowest-margin bits first. Candidates from all probed buckets
  are re-ranked *exactly*, so recall is governed by candidate coverage,
  not hash luck.
* :class:`IVFIndex` — inverted-file index whose coarse quantizer is a
  *cell assignment*: by default GloDyNE's own Step 1 partition cells
  (the (K, ε) partition :class:`repro.partition.incremental.
  IncrementalPartitioner` maintains across snapshots), falling back to
  frozen random anchors when no partition is available. Queries probe
  the ``nprobe`` nearest cell centroids and exact-scan their members.

All support **incremental refresh**: after a streaming flush, only rows
whose embedding moved more than a tolerance (plus brand-new rows) are
re-normalised and re-hashed / re-assigned — the point of pairing the
index with GloDyNE, which by design moves only the selected ~α·|V| rows
per step. A refresh is bit-identical to a from-scratch rebuild of a
fresh index with the same constructor parameters: frozen configuration
(hyperplanes / anchors / centers) depends only on the constructor
arguments and the first build, and candidate sets are deduplicated into
sorted order before the exact re-rank.

The exact and IVF backends additionally take ``quantized="int8"``: the
*candidate* scan runs over an int8 per-row scale-quantized copy of the
unit matrix (:mod:`repro.serving.storage`), and the top ``rerank``
candidates are re-scored through the shared exact einsum kernel — final
scores stay exact float32 cosines, recall is governed by how far down
the int8 ranking the true neighbours sit (>= 0.95 recall@10 at the
default depth; goldens pin it). Quantization is per-row, so a refresh
re-encodes exactly the rows it re-normalises and stays bit-identical to
a rebuild.

Pure numpy, no external ANN dependency.
"""

from __future__ import annotations

import numpy as np

from repro.serving.storage import quantize_int8, quantized_scores

__all__ = ["BruteForceIndex", "IVFIndex", "LSHIndex", "unit_rows"]

#: Accepted values of the ``quantized`` index knob.
_QUANTIZED_MODES = (None, "int8")

#: Coarse-to-fine prescan knobs for the quantized brute scan. On large
#: matrices the full-width int8 scan is dequantize-bound, so a
#: contiguous copy of every ``_PRESCAN_STRIDE``-th code column (a 4x
#: cheaper read) shortlists ``_PRESCAN_POOL x`` the rerank depth first;
#: only the shortlist gets the full-width int8 scan. Engaged when the
#: matrix holds at least ``_PRESCAN_MIN_RATIO x`` the shortlist — below
#: that the two-level pass saves nothing.
_PRESCAN_STRIDE = 4
_PRESCAN_POOL = 8
_PRESCAN_MIN_RATIO = 4


def _resolve_rerank(rerank: int | None, k: int) -> int:
    """Candidate pool size the int8 scan hands to the exact re-rank.

    ``None`` derives ``max(32 * k, 256)`` — deep enough that int8
    ranking error (max per-row quantization error is ``scale / 2``)
    practically never pushes a true top-k row out of the pool, shallow
    enough that the einsum re-rank stays negligible next to the scan.
    """
    if rerank is None:
        return max(32 * k, 256)
    return max(int(rerank), k)


def unit_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalised float32 copy of ``matrix`` (zero rows stay zero)."""
    matrix = np.asarray(matrix, dtype=np.float32)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


def _unit_vector(vector: np.ndarray) -> np.ndarray:
    vector = np.asarray(vector, dtype=np.float32).ravel()
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm > 0 else vector


def _cosine_scores(unit_matrix: np.ndarray, unit_query: np.ndarray) -> np.ndarray:
    """Per-row dot products with a shape-independent reduction order.

    ``matrix @ query`` hands the reduction to BLAS gemv, whose kernel
    choice — and therefore last-ulp rounding — depends on the matrix row
    count and a row's position in the block layout: the same row can
    score differently inside a sliced matrix than inside the full one.
    ``einsum`` reduces every row independently of the matrix shape,
    which is what lets a sharded exact scan
    (:mod:`repro.serving.shards`) reproduce the unsharded scan bit for
    bit. ~1.4x the gemv cost; only the per-query exact paths pay it.
    """
    return np.einsum("ij,j->i", unit_matrix, unit_query)


def _top_k(scores: np.ndarray, row_ids: np.ndarray, k: int) -> np.ndarray:
    """Positions of the top-k scores, ties broken by ascending row id.

    Deterministic ordering is what makes an incremental refresh
    bit-identical to a rebuild even when bucket layouts differ.
    ``row_ids`` must be ascending (candidate sets are deduplicated into
    sorted order), so a stable sort on the negated scores already breaks
    ties by row id; the argpartition pre-pass only pays off on large
    exact scans.
    """
    k = min(k, scores.size)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if scores.size <= 1024:
        return np.argsort(-scores, kind="stable")[:k]
    pool = np.argpartition(scores, scores.size - k)[-k:]
    order = np.lexsort((row_ids[pool], -scores[pool].astype(np.float64)))
    return pool[order]


class BruteForceIndex:
    """Exact cosine kNN by full matrix scan (the recall ground truth).

    Parameters
    ----------
    quantized:
        ``"int8"`` scans an int8 per-row scale-quantized copy of the
        unit matrix instead of the float32 exact scan, then re-ranks the
        top ``rerank`` candidates through the shared exact kernel —
        returned scores are exact float32 cosines, but a true neighbour
        the int8 ranking buried below the re-rank pool can be missed
        (recall@10 >= 0.95 goldens pin the depth default). The scan
        kernel (chunked dequantize + BLAS gemv, coarse-to-fine over a
        strided-column prescan copy on large matrices) is materially
        faster than the exact path's shape-independent einsum at
        serving sizes. ``None`` (default) keeps the exact scan.
    rerank:
        Candidate pool the int8 scan hands to the exact re-rank
        (``quantized`` mode only). ``None`` derives ``max(32*k, 256)``
        per query.
    """

    backend_name = "exact"

    def __init__(
        self, *, quantized: str | None = None, rerank: int | None = None
    ) -> None:
        if quantized not in _QUANTIZED_MODES:
            raise ValueError(
                f"unknown quantized mode {quantized!r}; "
                f"choose from {_QUANTIZED_MODES}"
            )
        if rerank is not None and rerank < 1:
            raise ValueError("rerank must be >= 1 (or None)")
        self.quantized = quantized
        self.rerank = rerank
        #: Unquantized ``query_many`` scores via one gemm, whose
        #: reduction order differs from the per-query gemv by up to an
        #: ulp — batched results are then not bit-identical to
        #: sequential ``query`` calls. The quantized scan is per-query
        #: already, so its batched path loops ``query`` and matches.
        self.batch_matches_single = quantized is not None
        self._raw: np.ndarray | None = None
        self._unit: np.ndarray | None = None
        self._codes: np.ndarray | None = None  # (N, d) int8, quantized mode
        self._scales: np.ndarray | None = None  # (N,) float32
        self._codes_lo: np.ndarray | None = None  # (N, ceil(d/4)) prescan
        self.last_refresh_rows = 0

    @property
    def num_rows(self) -> int:
        """Rows currently indexed (0 before the first ``build``)."""
        return 0 if self._raw is None else int(self._raw.shape[0])

    def build(self, matrix: np.ndarray) -> None:
        """(Re)build from scratch over ``matrix`` rows."""
        self._raw = np.array(matrix, dtype=np.float32)
        self._unit = unit_rows(self._raw)
        if self.quantized:
            self._codes, self._scales = quantize_int8(self._unit)
            self._codes_lo = np.ascontiguousarray(
                self._codes[:, ::_PRESCAN_STRIDE]
            )
        self.last_refresh_rows = self.num_rows

    def refresh(self, matrix: np.ndarray, tolerance: float = 0.0) -> int:
        """Sync to a new matrix; re-normalise only rows that moved.

        Rows ``i < num_rows`` whose max-abs change exceeds ``tolerance``
        plus all appended rows are updated. Returns how many rows were
        touched. The matrix may only grow (the store is append-only).
        """
        if self._raw is None:
            self.build(matrix)
            return self.num_rows
        matrix = np.asarray(matrix, dtype=np.float32)
        changed = _changed_rows(self._raw, matrix, tolerance)
        if changed.size:
            old_n = self._raw.shape[0]
            if matrix.shape[0] != old_n:
                raw = np.empty_like(matrix)
                raw[:old_n] = self._raw
                unit = np.empty_like(matrix)
                unit[:old_n] = self._unit
                self._raw, self._unit = raw, unit
                if self.quantized:
                    codes = np.empty(matrix.shape, dtype=np.int8)
                    codes[:old_n] = self._codes
                    scales = np.empty(matrix.shape[0], dtype=np.float32)
                    scales[:old_n] = self._scales
                    codes_lo = np.empty(
                        (matrix.shape[0], self._codes_lo.shape[1]),
                        dtype=np.int8,
                    )
                    codes_lo[:old_n] = self._codes_lo
                    self._codes, self._scales = codes, scales
                    self._codes_lo = codes_lo
            self._raw[changed] = matrix[changed]
            fresh_unit = unit_rows(matrix[changed])
            self._unit[changed] = fresh_unit
            if self.quantized:
                # Per-row codec: re-encoding only the touched rows is
                # bit-identical to a full rebuild's encoding.
                self._codes[changed], self._scales[changed] = quantize_int8(
                    fresh_unit
                )
                self._codes_lo[changed] = self._codes[
                    changed, ::_PRESCAN_STRIDE
                ]
        self.last_refresh_rows = int(changed.size)
        return int(changed.size)

    def query(self, vector: np.ndarray, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k rows by cosine similarity.

        Parameters
        ----------
        vector:
            Query vector of shape ``(dim,)``, any float dtype.
        k:
            Rows to return, ``>= 1`` (clipped to the matrix size).

        Returns
        -------
        (row_ids, scores)
            ``int64`` row indices and their ``float32`` cosines, best
            first, ties broken by ascending row id. In ``quantized``
            mode the scores are still exact (re-ranked through the
            shared kernel); only candidate *selection* is approximate.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        q = _unit_vector(vector)
        if self.quantized:
            return self._quantized_query(q, k)
        # Shape-independent reduction: a shard-sliced matrix scores its
        # rows exactly like the full matrix does (see _cosine_scores).
        scores = _cosine_scores(self._unit, q)
        rows = np.arange(scores.size, dtype=np.int64)
        best = _top_k(scores, rows, k)
        return rows[best], scores[best]

    def _quantized_query(
        self, q: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Int8 candidate scan + exact float32 re-rank of the pool.

        The int8 scan (chunked dequantize into a float32 staging buffer,
        BLAS gemv per chunk) ranks rows approximately; the best
        ``rerank`` candidates are then re-scored with the exact
        shape-independent kernel, so the *returned* scores for any row
        are bit-identical to the exact backend's scores for that row.

        On large matrices the scan itself goes coarse-to-fine: a
        contiguous every-``_PRESCAN_STRIDE``-th-column copy of the codes
        (4x fewer bytes to dequantize) shortlists
        ``_PRESCAN_POOL x rerank`` rows, and only the shortlist gets the
        full-width int8 scan. Both levels rank deterministically
        (``_top_k`` ties toward the lower row id), so refresh-vs-rebuild
        bit-identity is preserved.
        """
        n = self._codes.shape[0]
        rows = np.arange(n, dtype=np.int64)
        depth = min(_resolve_rerank(self.rerank, k), n)
        shortlist = _PRESCAN_POOL * depth
        if n >= _PRESCAN_MIN_RATIO * shortlist:
            q_lo = np.ascontiguousarray(q[::_PRESCAN_STRIDE])
            coarse = quantized_scores(self._codes_lo, self._scales, q_lo)
            keep = _top_k(coarse, rows, shortlist)
            scanned = np.sort(rows[keep])
            approx = quantized_scores(
                self._codes[scanned], self._scales[scanned], q
            )
        else:
            scanned = rows
            approx = quantized_scores(self._codes, self._scales, q)
        pool = _top_k(approx, scanned, depth)
        candidates = np.sort(scanned[pool])
        scores = _cosine_scores(self._unit[candidates], q)
        best = _top_k(scores, candidates, k)
        return candidates[best], scores[best]

    def query_many(
        self, vectors: np.ndarray, k: int = 10
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched exact kNN: one matmul scores every query at once.

        Parameters
        ----------
        vectors:
            Query matrix of shape ``(Q, dim)``, any float dtype (cast to
            float32).
        k:
            Neighbours per query, ``>= 1``.

        Returns
        -------
        list of (row_ids, scores)
            One ``(int64 row_ids, float32 scores)`` pair per query row,
            best first.

        Notes
        -----
        The batched scan reads the matrix once per batch instead of once
        per query — the serving-style micro-batch path. Because BLAS gemm
        results depend on the batch shape, scores may differ from
        :meth:`query` in the last ulp (``batch_matches_single`` is False);
        the ranking is still exact. Callers that need bit-identical
        batched/unbatched results use the LSH backend. In ``quantized``
        mode the batch loops :meth:`query` instead — the chunked int8
        scan is already the fast kernel, and the loop keeps batched
        answers bit-identical to single ones (``batch_matches_single``
        is True), so they share the serving cache.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        if self.quantized:
            vectors = np.asarray(vectors, dtype=np.float32)
            return [self.query(vectors[i], k) for i in range(vectors.shape[0])]
        queries = unit_rows(vectors)
        scores = self._unit @ queries.T  # (N, Q)
        rows = np.arange(scores.shape[0], dtype=np.int64)
        results = []
        for i in range(queries.shape[0]):
            column = np.ascontiguousarray(scores[:, i])
            best = _top_k(column, rows, k)
            results.append((rows[best], column[best]))
        return results


def _changed_rows(
    old: np.ndarray, new: np.ndarray, tolerance: float
) -> np.ndarray:
    """Rows of ``new`` that moved beyond ``tolerance`` or are brand new."""
    old_n, new_n = old.shape[0], new.shape[0]
    if new_n < old_n:
        raise ValueError(
            f"matrix shrank from {old_n} to {new_n} rows; the embedding "
            "store is append-only, so refresh expects growth"
        )
    if new.shape[1] != old.shape[1]:
        raise ValueError("embedding dimensionality changed between versions")
    # Cheap single-pass inequality scan first; the exact tolerance test
    # only runs on the (few) rows that changed at all.
    moved = np.flatnonzero(np.any(new[:old_n] != old, axis=1))
    if tolerance > 0.0 and moved.size:
        beyond = (
            np.max(np.abs(new[moved] - old[moved]), axis=1) > tolerance
        )
        moved = moved[beyond]
    fresh = np.arange(old_n, new_n, dtype=np.int64)
    return np.concatenate([moved, fresh]) if fresh.size else moved


class LSHIndex:
    """Random-hyperplane LSH with multi-table, multi-probe querying.

    Parameters
    ----------
    num_tables, num_bits:
        ``num_tables`` independent hash tables of ``2**num_bits`` buckets
        each. More tables / fewer bits raise recall and cost.
        ``num_bits=None`` (default) sizes the tables to the data at the
        first build — ``ceil(log2(N)) - 2``, clipped to [3, 16], i.e. a
        few rows per bucket — and freezes the choice like the
        hyperplanes; an explicit value pins it.
    min_candidates:
        Probing continues (flipping the lowest-|margin| bits first,
        query-directed multi-probe) until at least this many candidate
        rows were gathered or probes are exhausted. ``None`` derives
        ``max(24 * k, 192)`` per query.
    max_probes:
        Bit-flip rounds per table after the exact bucket (default: all
        ``num_bits``).
    seed:
        Seeds the hyperplane draw. Two indexes with equal
        ``(dim, num_tables, num_bits, seed)`` and the same ``center``
        hash identically — the anchor for refresh/rebuild equivalence.
    center:
        SGNS embeddings occupy a narrow cone (every pair of unit rows
        has high cosine), which collapses sign-of-projection hashing
        into a handful of buckets. Hashing the *residual* around the
        data mean restores discrimination, so the index hashes
        ``unit_row - center``. ``None`` (default) computes the center
        from the first ``build`` and freezes it — refreshes reuse it,
        exactly like the hyperplanes. Pass an explicit center (e.g.
        ``other_index.center``) to rebuild a serving index from scratch
        with identical hashing.
    """

    backend_name = "lsh"
    #: ``query_many`` answers are bit-identical to sequential ``query``
    #: calls — the serving layer relies on this to share one result cache
    #: between the batched and unbatched paths.
    batch_matches_single = True

    def __init__(
        self,
        num_tables: int = 8,
        num_bits: int | None = None,
        *,
        seed: int = 0,
        min_candidates: int | None = None,
        max_probes: int | None = None,
        center: np.ndarray | None = None,
    ) -> None:
        if num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if num_bits is not None and not (1 <= num_bits <= 62):
            raise ValueError("num_bits must lie in [1, 62]")
        if min_candidates is not None and min_candidates < 1:
            raise ValueError("min_candidates must be >= 1")
        self.num_tables = int(num_tables)
        self.num_bits = None if num_bits is None else int(num_bits)
        # Auto-sized tables (and an auto-derived center) may be re-sized
        # by a serving layer when the store outgrows the first build;
        # explicit values are a user's pin and must never be overridden.
        self.auto_sized = num_bits is None and center is None
        self.seed = int(seed)
        self.min_candidates = min_candidates
        self._max_probes_arg = max_probes
        self.max_probes = 0  # resolved once num_bits is known
        self._planes: np.ndarray | None = None  # (T*B, d) float32
        self._pow2: np.ndarray | None = None
        self._center: np.ndarray | None = (
            None if center is None else np.asarray(center, dtype=np.float32)
        )
        self._center_proj: np.ndarray | None = None  # planes @ center
        # Row buffers are capacity-doubled: the live rows are [:_n].
        self._n = 0
        self._raw: np.ndarray | None = None
        self._unit: np.ndarray | None = None
        self._codes: np.ndarray | None = None  # (N, T) int64 bucket keys
        self._tables: list[dict[int, np.ndarray]] = []
        self.last_refresh_rows = 0

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Rows currently indexed (0 before the first ``build``)."""
        return self._n

    @property
    def center(self) -> np.ndarray | None:
        """Frozen hashing center (copy); None before the first build."""
        return None if self._center is None else self._center.copy()

    def _ensure_planes(self, dim: int, num_rows: int) -> None:
        if self._planes is None:
            if self.num_bits is None:
                # A few rows per bucket: tables sized to the first build,
                # then frozen (refreshes must hash identically).
                self.num_bits = int(
                    np.clip(np.ceil(np.log2(max(num_rows, 2))) - 2, 3, 16)
                )
            self.max_probes = (
                self.num_bits
                if self._max_probes_arg is None
                else min(self._max_probes_arg, self.num_bits)
            )
            self._pow2 = (1 << np.arange(self.num_bits, dtype=np.int64))
            rng = np.random.default_rng(self.seed)
            self._planes = rng.standard_normal(
                (self.num_tables * self.num_bits, dim)
            ).astype(np.float32)
        elif self._planes.shape[1] != dim:
            raise ValueError(
                f"index was built for dim {self._planes.shape[1]}, got {dim}"
            )

    def _hash_rows(self, unit: np.ndarray) -> np.ndarray:
        """Bucket key per (row, table): sign-pattern packed to int64.

        ``x @ planes.T - center_proj`` equals ``(x - center) @ planes.T``
        with the center projection hoisted out of the per-row work.
        """
        bits = (unit @ self._planes.T - self._center_proj) > 0.0  # (n, T*B)
        bits = bits.reshape(unit.shape[0], self.num_tables, self.num_bits)
        return bits @ self._pow2  # (n, T)

    # ------------------------------------------------------------------
    def _grow_to(self, size: int, dim: int) -> None:
        """Capacity-double the row buffers (amortised O(1) per new row)."""
        capacity = 0 if self._raw is None else self._raw.shape[0]
        if size <= capacity:
            return
        new_capacity = max(16, capacity)
        while new_capacity < size:
            new_capacity *= 2
        raw = np.empty((new_capacity, dim), dtype=np.float32)
        unit = np.empty((new_capacity, dim), dtype=np.float32)
        codes = np.empty((new_capacity, self.num_tables), dtype=np.int64)
        if self._n:
            raw[: self._n] = self._raw[: self._n]
            unit[: self._n] = self._unit[: self._n]
            codes[: self._n] = self._codes[: self._n]
        self._raw, self._unit, self._codes = raw, unit, codes

    def build(self, matrix: np.ndarray) -> None:
        """Hash every row into all tables from scratch."""
        matrix = np.asarray(matrix, dtype=np.float32)
        n, dim = matrix.shape
        self._ensure_planes(dim, n)
        self._n = n
        self._raw = np.array(matrix)
        self._unit = unit_rows(matrix)
        if self._center is None:
            self._center = self._unit.mean(axis=0)
        elif self._center.shape != (dim,):
            raise ValueError("center dimensionality does not match matrix")
        self._center_proj = self._planes @ self._center
        self._codes = self._hash_rows(self._unit)
        self._tables = []
        for t in range(self.num_tables):
            table: dict[int, np.ndarray] = {}
            if n:
                codes = self._codes[:, t]
                order = np.argsort(codes, kind="stable")
                sorted_codes = codes[order]
                boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
                for chunk in np.split(order, boundaries):
                    table[int(codes[chunk[0]])] = chunk
            self._tables.append(table)
        self.last_refresh_rows = n

    def refresh(self, matrix: np.ndarray, tolerance: float = 0.0) -> int:
        """Re-hash only rows that moved beyond ``tolerance`` (plus new rows).

        Returns the number of rows re-hashed. Equivalent to
        ``build(matrix)`` on a fresh index with the same frozen
        configuration (seed, bits, center) — buckets may order members
        differently internally, but query results are identical because
        candidates are deduplicated into sorted order before the exact
        re-rank.
        """
        if self._raw is None:
            self.build(matrix)
            return self.num_rows
        matrix = np.asarray(matrix, dtype=np.float32)
        old_n = self._n
        changed = _changed_rows(self._raw[:old_n], matrix, tolerance)
        if not changed.size:
            self.last_refresh_rows = 0
            return 0
        self._grow_to(matrix.shape[0], matrix.shape[1])
        self._n = matrix.shape[0]
        self._raw[changed] = matrix[changed]
        new_unit = unit_rows(matrix[changed])
        self._unit[changed] = new_unit
        new_codes = self._hash_rows(new_unit)  # (len(changed), T)
        # `changed` is ascending with moved rows (< old_n) first.
        num_moved = int(np.searchsorted(changed, old_n))
        changed_list = changed.tolist()
        new_codes_list = new_codes.tolist()
        old_codes_list = self._codes[changed[:num_moved]].tolist()
        for t in range(self.num_tables):
            table = self._tables[t]
            # Evict moved rows whose bucket changed, grouped per bucket.
            evict: dict[int, list[int]] = {}
            insert: dict[int, list[int]] = {}
            for j, row in enumerate(changed_list):
                code = new_codes_list[j][t]
                if j < num_moved:
                    old_code = old_codes_list[j][t]
                    if old_code == code:
                        continue
                    evict.setdefault(old_code, []).append(row)
                insert.setdefault(code, []).append(row)
            for code, rows in evict.items():
                gone = set(rows)
                kept = [x for x in table[code].tolist() if x not in gone]
                if kept:
                    table[code] = np.asarray(kept, dtype=np.int64)
                else:
                    del table[code]
            for code, rows in insert.items():
                fresh = np.asarray(rows, dtype=np.int64)
                existing = table.get(code)
                table[code] = (
                    fresh if existing is None else np.concatenate([existing, fresh])
                )
        self._codes[changed] = new_codes
        self.last_refresh_rows = int(changed.size)
        return int(changed.size)

    # ------------------------------------------------------------------
    def _gather_and_rank(
        self, q: np.ndarray, codes: list, proj: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared query core: bucket gather, multi-probe, exact re-rank.

        ``codes`` is one bucket key per table (Python ints), ``proj`` the
        (T*B,) hyperplane projections of the unit query ``q``.
        """
        tables = self._tables
        parts: list[np.ndarray] = []
        gathered = 0
        for t, code in enumerate(codes):
            bucket = tables[t].get(code)
            if bucket is not None:
                parts.append(bucket)
                gathered += bucket.size
        target = (
            self.min_candidates
            if self.min_candidates is not None
            else max(24 * k, 192)
        )
        if gathered < target and self.max_probes:
            # Query-directed probing: flip the least confident bits first.
            flip_order = np.argsort(
                np.abs(proj).reshape(self.num_tables, self.num_bits), axis=1
            ).tolist()
            for r in range(self.max_probes):
                for t, code in enumerate(codes):
                    bucket = tables[t].get(code ^ (1 << flip_order[t][r]))
                    if bucket is not None:
                        parts.append(bucket)
                        gathered += bucket.size
                if gathered >= target:
                    break
        if not parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        if len(parts) == 1:
            # One bucket has no duplicates, but refresh appends rows out
            # of order and _top_k's tie-break needs ascending row ids.
            candidates = np.sort(parts[0])
        else:
            # Sorted dedup; a Python set beats np.unique by ~5x at the
            # few-hundred-candidate sizes this serves.
            merged: set[int] = set()
            for part in parts:
                merged.update(part.tolist())
            candidates = np.fromiter(
                sorted(merged), dtype=np.int64, count=len(merged)
            )
        # Shape-independent re-rank (see _cosine_scores): the scores a
        # candidate gets do not depend on how many candidates were
        # gathered, so LSH re-rank scores agree with the exact backends'.
        scores = _cosine_scores(self._unit[candidates], q)
        best = _top_k(scores, candidates, k)
        return candidates[best], scores[best]

    def query(self, vector: np.ndarray, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k by cosine similarity.

        Probes the exact bucket of each table first, then flips bits in
        ascending |projection| order (the least confident bits) until
        ``min_candidates`` rows were gathered; the candidate set is then
        re-ranked exactly.

        Parameters
        ----------
        vector:
            Query vector of shape ``(dim,)``, any float dtype.
        k:
            Rows to return, ``>= 1``.

        Returns
        -------
        (row_ids, scores)
            ``int64`` row indices and their exact ``float32`` cosines,
            best first, ties broken by ascending row id. May return
            fewer than ``k`` rows when probing gathered fewer
            candidates.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        q = _unit_vector(vector)
        proj = self._planes @ q - self._center_proj  # (T*B,)
        codes = (
            (proj > 0.0).reshape(self.num_tables, self.num_bits) @ self._pow2
        ).tolist()
        return self._gather_and_rank(q, codes, proj, k)

    def query_many(
        self, vectors: np.ndarray, k: int = 10
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched approximate kNN, bit-identical to sequential queries.

        Parameters
        ----------
        vectors:
            Query matrix of shape ``(Q, dim)``, any float dtype (cast to
            float32).
        k:
            Neighbours per query, ``>= 1``.

        Returns
        -------
        list of (row_ids, scores)
            One ``(int64 row_ids, float32 scores)`` pair per query row,
            best first — exactly what ``[self.query(v, k) for v in
            vectors]`` returns.

        Notes
        -----
        This is the serving micro-batch dispatch target
        (:class:`repro.server.MicroBatcher`), and its contract is
        *determinism over kernel fusion*: every per-query reduction
        (normalisation, hyperplane projection, re-rank) runs through the
        same 1-D kernels as :meth:`query`, because BLAS gemm output
        varies with the batch shape — a fused ``(Q, d) @ (d, T*B)``
        projection can flip a near-zero hash bit or reorder the probe
        schedule, making batched answers diverge from unbatched ones.
        Serving caches results across both paths, so
        ``batch_matches_single`` is load-bearing, not cosmetic. The
        batch-level savings live above this call (one index/version
        resolution, one cache sweep, one event-loop dispatch); the probe
        work was always per-query.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        vectors = np.asarray(vectors, dtype=np.float32)
        return [self.query(vectors[i], k) for i in range(vectors.shape[0])]

    def fresh_like(self) -> "LSHIndex":
        """A new, empty index carrying this one's tuning knobs.

        When the index is ``auto_sized``, the first-build artefacts
        (table bits, hashing center) are *not* carried over, so the next
        ``build`` re-derives them from the data — the serving layer uses
        this to re-size an index once the store outgrows its first
        sizing. Explicit constructor pins are preserved as-is.
        """
        return LSHIndex(
            self.num_tables,
            None if self.auto_sized else self.num_bits,
            seed=self.seed,
            min_candidates=self.min_candidates,
            max_probes=self._max_probes_arg,
            center=None if self.auto_sized else self.center,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LSHIndex(rows={self.num_rows}, tables={self.num_tables}, "
            f"bits={self.num_bits})"
        )


class IVFIndex:
    """Inverted-file cosine kNN over a coarse cell assignment.

    The coarse quantizer is a per-row *cell id* rather than learned
    k-means codebooks, which is what ties serving back to the paper's
    Step 1: GloDyNE already maintains a (K, eps) partition of the graph
    incrementally (:class:`repro.partition.incremental.
    IncrementalPartitioner`), and nodes that share a partition cell are
    topological neighbours — exactly the rows a cosine query over their
    embeddings wants to scan together. Passing that partition to
    ``build``/``refresh`` via ``assignment`` makes the index
    *partition-aware*; with no assignment the index falls back to
    frozen random unit **anchors** (one per cell, drawn from ``seed``
    at the first build) and assigns each row to its nearest anchor.

    Each cell keeps its member rows (sorted ascending) and a centroid —
    the unit-normalised mean of the members' unit embeddings. A query
    ranks centroids by cosine, probes the best cells, and re-ranks the
    gathered members *exactly*, so recall is governed by how many rows
    the probed cells cover.

    Parameters
    ----------
    num_cells:
        Anchor count for the internal (no-assignment) mode. ``None``
        (default) sizes it to the data at the first build —
        ``round(sqrt(N))`` clipped to [1, 4096] — and freezes the
        choice, like :class:`LSHIndex` table bits. Ignored whenever an
        explicit ``assignment`` drives the cell layout.
    nprobe:
        Non-empty cells scanned per query (best centroid first). More
        probes raise recall and cost.
    min_recall_fallback:
        Coverage floor in [0, 1]: probing keeps opening cells past
        ``nprobe`` until the gathered candidates cover at least this
        fraction of the indexed rows (and always at least ``k``).
        ``0.0`` (default) trusts ``nprobe`` alone; ``1.0`` degrades
        every query to an exact full scan.
    seed:
        Seeds the anchor draw (internal mode only). Two indexes with
        equal ``(dim, num_cells, seed)`` and the same ``center`` assign
        identically — the anchor-mode rebuild-equivalence anchor.
    center:
        SGNS embeddings occupy a narrow cone, so anchor assignment
        scores the *residual* ``unit_row - center`` like the LSH
        backend hashes it. ``None`` derives the center from the first
        build and freezes it; pass ``other_index.center`` to rebuild a
        serving index from scratch with identical anchor assignment.
    quantized:
        ``"int8"`` pre-ranks the gathered cell members with the int8
        per-row scale codec (:mod:`repro.serving.storage`) and exact
        re-ranks only the top ``rerank`` of them — the returned scores
        stay exact float32 cosines. Pays off when probed cells gather
        far more members than the re-rank pool. ``None`` (default)
        exact re-ranks every gathered member.
    rerank:
        Candidate pool the int8 pre-rank hands to the exact re-rank
        (``quantized`` mode only); ``None`` derives ``max(32*k, 256)``.

    Notes
    -----
    **Determinism contract** (PR 4): every reduction runs through
    per-query / per-row / per-cell 1-D kernels — centroid ranking is a
    gemv, row assignment is one gemv per row, centroids are recomputed
    per cell from the member list — so ``query_many`` is bit-identical
    to looped ``query`` and ``refresh`` is bit-identical to ``build``
    on a fresh index with the same frozen configuration and the same
    final ``assignment`` history mode. The one incremental-only rule:
    when an index driven by external assignments refreshes *without*
    one, brand-new rows join the nearest *committed* centroid's cell —
    deterministic, but dependent on the refresh history, so it is
    excluded from the rebuild-equivalence goldens.
    """

    backend_name = "ivf"
    #: ``query_many`` answers are bit-identical to sequential ``query``
    #: calls — same per-query kernels, no batch-shape-dependent gemm.
    batch_matches_single = True
    #: ``build``/``refresh`` accept a per-row cell ``assignment`` — the
    #: serving layer forwards the published partition when one exists.
    accepts_assignment = True

    def __init__(
        self,
        num_cells: int | None = None,
        *,
        nprobe: int = 8,
        min_recall_fallback: float = 0.0,
        seed: int = 0,
        center: np.ndarray | None = None,
        quantized: str | None = None,
        rerank: int | None = None,
    ) -> None:
        if num_cells is not None and num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if not 0.0 <= min_recall_fallback <= 1.0:
            raise ValueError("min_recall_fallback must lie in [0, 1]")
        if quantized not in _QUANTIZED_MODES:
            raise ValueError(
                f"unknown quantized mode {quantized!r}; "
                f"choose from {_QUANTIZED_MODES}"
            )
        if rerank is not None and rerank < 1:
            raise ValueError("rerank must be >= 1 (or None)")
        self._num_cells_arg = None if num_cells is None else int(num_cells)
        self.nprobe = int(nprobe)
        self.min_recall_fallback = float(min_recall_fallback)
        self.seed = int(seed)
        self.quantized = quantized
        self.rerank = rerank
        #: Auto-sized anchors (and an auto-derived center) may be
        #: re-sized by a serving layer when the store outgrows the first
        #: build; explicit values are a user's pin (see LSHIndex).
        self.auto_sized = num_cells is None and center is None
        self._center: np.ndarray | None = (
            None if center is None else np.asarray(center, dtype=np.float32)
        )
        self._anchors: np.ndarray | None = None  # (C, d) float32, frozen
        self._anchor_proj: np.ndarray | None = None  # anchors @ center
        self._external = False  # cells come from explicit assignments
        # Row buffers are capacity-doubled: the live rows are [:_n].
        self._n = 0
        self._raw: np.ndarray | None = None
        self._unit: np.ndarray | None = None
        self._codes: np.ndarray | None = None  # (N, d) int8, quantized mode
        self._scales: np.ndarray | None = None  # (N,) float32
        self._assign: np.ndarray | None = None  # (N,) int64 cell ids
        self._members: list[np.ndarray] = []  # sorted int64 rows per cell
        self._centroids: np.ndarray | None = None  # (C, d) float32
        self.last_refresh_rows = 0

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Rows currently indexed (0 before the first ``build``)."""
        return self._n

    @property
    def num_cells(self) -> int:
        """Live cell count (the constructor pin before the first build)."""
        if self._centroids is not None:
            return len(self._members)
        return 0 if self._num_cells_arg is None else self._num_cells_arg

    @property
    def center(self) -> np.ndarray | None:
        """Frozen assignment center (copy); None before the first build."""
        return None if self._center is None else self._center.copy()

    @property
    def cell_sizes(self) -> list[int]:
        """Member count per cell (empty list before the first build)."""
        return [int(members.size) for members in self._members]

    # ------------------------------------------------------------------
    def _ensure_anchors(self, dim: int, num_rows: int) -> None:
        """Draw the frozen anchor set at the first internal-mode build."""
        if self._anchors is None:
            cells = self._num_cells_arg
            if cells is None:
                # ~sqrt(N) cells: probing nprobe of them scans roughly
                # nprobe*sqrt(N) rows. Frozen like LSH table bits.
                cells = int(np.clip(round(np.sqrt(max(num_rows, 1))), 1, 4096))
            rng = np.random.default_rng(self.seed)
            anchors = rng.standard_normal((cells, dim)).astype(np.float32)
            self._anchors = unit_rows(anchors)
            self._anchor_proj = self._anchors @ self._center
        elif self._anchors.shape[1] != dim:
            raise ValueError(
                f"index was built for dim {self._anchors.shape[1]}, got {dim}"
            )

    def _validate_assignment(self, assignment, n: int) -> np.ndarray:
        """Coerce ``assignment`` to a validated (n,) int64 cell-id array."""
        assign = np.asarray(assignment, dtype=np.int64).ravel()
        if assign.shape[0] != n:
            raise ValueError(
                f"assignment has {assign.shape[0]} entries for {n} rows"
            )
        if n and int(assign.min()) < 0:
            raise ValueError("assignment cell ids must be non-negative")
        if n and int(assign.max()) + 1 > max(2 * n, 1024):
            raise ValueError(
                "assignment names far more cells than rows; pass compact "
                "0-based cell ids (e.g. PartitionResult.assignment values)"
            )
        return assign

    def _anchor_cells(self, unit: np.ndarray) -> np.ndarray:
        """Nearest-anchor cell per row — one gemv per row, never a gemm.

        ``anchors @ u - anchors @ center`` equals scoring the residual
        ``u - center`` against every anchor; argmax ties break to the
        lowest cell id. Per-row kernels keep a refresh's assignment of a
        subset bit-identical to a rebuild's assignment of all rows.
        """
        out = np.empty(unit.shape[0], dtype=np.int64)
        for i in range(unit.shape[0]):
            out[i] = int(np.argmax(self._anchors @ unit[i] - self._anchor_proj))
        return out

    def _nearest_centroid_cells(self, unit: np.ndarray) -> np.ndarray:
        """Nearest committed centroid per row (external-mode fresh rows)."""
        out = np.empty(unit.shape[0], dtype=np.int64)
        for i in range(unit.shape[0]):
            out[i] = int(np.argmax(self._centroids @ unit[i]))
        return out

    def _update_centroid(self, cell: int) -> None:
        """Recompute one cell's centroid from scratch off its member list.

        Always the same per-cell kernel — unit-mean of the members' unit
        rows — whether called from ``build`` or from a refresh's
        dirty-cell sweep, which is what makes the two bit-identical.
        Empty cells get a zero centroid (and are skipped by probing).
        """
        members = self._members[cell]
        if members.size:
            mean = self._unit[members].mean(axis=0)
            norm = float(np.linalg.norm(mean))
            self._centroids[cell] = mean / norm if norm > 0.0 else mean
        else:
            self._centroids[cell] = 0.0

    def _grow_to(self, size: int, dim: int) -> None:
        """Capacity-double the row buffers (amortised O(1) per new row)."""
        capacity = 0 if self._raw is None else self._raw.shape[0]
        if size <= capacity:
            return
        new_capacity = max(16, capacity)
        while new_capacity < size:
            new_capacity *= 2
        raw = np.empty((new_capacity, dim), dtype=np.float32)
        unit = np.empty((new_capacity, dim), dtype=np.float32)
        assign = np.empty(new_capacity, dtype=np.int64)
        if self._n:
            raw[: self._n] = self._raw[: self._n]
            unit[: self._n] = self._unit[: self._n]
            assign[: self._n] = self._assign[: self._n]
        self._raw, self._unit, self._assign = raw, unit, assign
        if self.quantized:
            codes = np.empty((new_capacity, dim), dtype=np.int8)
            scales = np.empty(new_capacity, dtype=np.float32)
            if self._n:
                codes[: self._n] = self._codes[: self._n]
                scales[: self._n] = self._scales[: self._n]
            self._codes, self._scales = codes, scales

    # ------------------------------------------------------------------
    def build(self, matrix: np.ndarray, *, assignment=None) -> None:
        """(Re)build from scratch over ``matrix`` rows.

        Parameters
        ----------
        matrix:
            Embedding matrix of shape ``(N, d)``, any float dtype.
        assignment:
            Optional per-row cell ids (length N, non-negative ints) —
            typically GloDyNE's partition cells. Omitted, rows go to
            their nearest frozen random anchor instead.
        """
        matrix = np.asarray(matrix, dtype=np.float32)
        n, dim = matrix.shape
        unit = unit_rows(matrix)
        if assignment is not None:
            assign = self._validate_assignment(assignment, n)
            num_cells = (int(assign.max()) + 1) if n else 0
            self._external = True
        else:
            if self._center is None:
                self._center = unit.mean(axis=0)
            elif self._center.shape != (dim,):
                raise ValueError("center dimensionality does not match matrix")
            self._ensure_anchors(dim, n)
            assign = self._anchor_cells(unit)
            num_cells = self._anchors.shape[0]
            self._external = False
        self._n = n
        self._raw = np.array(matrix)
        self._unit = unit
        if self.quantized:
            self._codes, self._scales = quantize_int8(unit)
        self._assign = assign
        self._members = [np.empty(0, dtype=np.int64) for _ in range(num_cells)]
        if n:
            # Stable sort groups rows by cell while keeping each member
            # list ascending — the _top_k tie-break invariant.
            order = np.argsort(assign, kind="stable")
            sorted_cells = assign[order]
            boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
            for chunk in np.split(order, boundaries):
                self._members[int(assign[chunk[0]])] = chunk
        self._centroids = np.zeros((num_cells, dim), dtype=np.float32)
        for cell in range(num_cells):
            self._update_centroid(cell)
        self.last_refresh_rows = n

    def refresh(
        self, matrix: np.ndarray, tolerance: float = 0.0, *, assignment=None
    ) -> int:
        """Sync to a new matrix; touch only moved rows and their cells.

        Rows whose embedding moved beyond ``tolerance`` (plus brand-new
        rows) are re-normalised; rows whose cell changed — because a new
        ``assignment`` says so, or because a moved embedding now sits
        nearer another anchor — migrate between member lists; and only
        the affected cells' centroids are recomputed, each with the same
        per-cell kernel ``build`` uses, so the refreshed index is
        bit-identical to a from-scratch rebuild. Returns the number of
        rows touched (re-normalised or re-assigned).

        Parameters
        ----------
        matrix:
            The new embedding matrix; may only grow (append-only store).
        tolerance:
            Max-abs movement below which a row is considered unchanged.
        assignment:
            Optional per-row cell ids for *all* rows of ``matrix``. When
            given, the cell layout (including the live cell count)
            follows it; when omitted on an assignment-driven index, old
            rows keep their cells and new rows join the nearest
            committed centroid's cell (incremental-only rule).
        """
        if self._raw is None:
            self.build(matrix, assignment=assignment)
            return self.num_rows
        matrix = np.asarray(matrix, dtype=np.float32)
        old_n = self._n
        n, dim = matrix.shape
        changed = _changed_rows(self._raw[:old_n], matrix[:, :], tolerance)
        new_assign = (
            None
            if assignment is None
            else self._validate_assignment(assignment, n)
        )
        self._grow_to(n, dim)
        self._n = n
        if changed.size:
            self._raw[changed] = matrix[changed]
            fresh_unit = unit_rows(matrix[changed])
            self._unit[changed] = fresh_unit
            if self.quantized:
                # Per-row codec: refresh-encoding only touched rows is
                # bit-identical to a rebuild's full encoding.
                self._codes[changed], self._scales[changed] = quantize_int8(
                    fresh_unit
                )
        # Which rows change cell, and to where. `mover_old` is -1 for
        # brand-new rows (they have no cell to leave).
        num_cells_old = len(self._members)
        if new_assign is not None:
            diff = np.flatnonzero(new_assign[:old_n] != self._assign[:old_n])
            fresh = np.arange(old_n, n, dtype=np.int64)
            movers = np.concatenate([diff, fresh])
            mover_targets = new_assign[movers]
            num_cells_new = (int(new_assign.max()) + 1) if n else 0
            self._external = True
        else:
            if self._external:
                # No partition this version: only brand-new rows need a
                # cell (nearest committed centroid, see class docstring).
                reassign = changed[changed >= old_n]
                targets = self._nearest_centroid_cells(self._unit[reassign])
            else:
                # Anchor mode: every moved embedding re-derives its cell.
                reassign = changed
                targets = self._anchor_cells(self._unit[reassign])
            is_old = reassign < old_n
            stays = np.zeros(reassign.shape[0], dtype=bool)
            if reassign.size:
                stays[is_old] = (
                    targets[is_old] == self._assign[reassign[is_old]]
                )
            movers = reassign[~stays]
            mover_targets = targets[~stays]
            num_cells_new = num_cells_old
        mover_old = np.where(
            movers < old_n,
            self._assign[np.minimum(movers, max(old_n - 1, 0))],
            np.int64(-1),
        )
        if not changed.size and not movers.size and num_cells_new == num_cells_old:
            self.last_refresh_rows = 0
            return 0
        # Commit assignments, migrate member lists, then sweep dirty
        # centroids: old cells of movers, new cells of movers, and cells
        # whose member embeddings moved in place.
        if new_assign is not None:
            self._assign[:n] = new_assign
        elif movers.size:
            self._assign[movers] = mover_targets
        dirty = set(mover_old[mover_old >= 0].tolist())
        dirty.update(mover_targets.tolist())
        if changed.size:
            dirty.update(self._assign[changed].tolist())
        if num_cells_new > num_cells_old:
            self._members.extend(
                np.empty(0, dtype=np.int64)
                for _ in range(num_cells_new - num_cells_old)
            )
            pad = np.zeros(
                (num_cells_new - num_cells_old, self._centroids.shape[1]),
                dtype=np.float32,
            )
            self._centroids = np.vstack([self._centroids, pad])
        evict: dict[int, list[int]] = {}
        insert: dict[int, list[int]] = {}
        for row, old_cell, new_cell in zip(
            movers.tolist(), mover_old.tolist(), mover_targets.tolist()
        ):
            if old_cell >= 0:
                evict.setdefault(old_cell, []).append(row)
            insert.setdefault(new_cell, []).append(row)
        for cell, rows in evict.items():
            gone = set(rows)
            self._members[cell] = np.asarray(
                [x for x in self._members[cell].tolist() if x not in gone],
                dtype=np.int64,
            )
        for cell, rows in insert.items():
            extra = np.asarray(sorted(rows), dtype=np.int64)
            existing = self._members[cell]
            self._members[cell] = (
                np.sort(np.concatenate([existing, extra]))
                if existing.size
                else extra
            )
        if num_cells_new < num_cells_old:
            # A shrinking assignment re-homed every row below the new
            # count, so the dropped tail must already be empty.
            for cell in range(num_cells_new, num_cells_old):
                if self._members[cell].size:
                    raise RuntimeError(
                        "assignment shrank the cell count but left "
                        f"members in dropped cell {cell}"
                    )
            del self._members[num_cells_new:]
            self._centroids = self._centroids[:num_cells_new].copy()
        for cell in sorted(c for c in dirty if c < num_cells_new):
            self._update_centroid(cell)
        touched = int(np.union1d(changed, movers).size)
        self.last_refresh_rows = touched
        return touched

    # ------------------------------------------------------------------
    def query(self, vector: np.ndarray, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k by cosine: probe best cells, re-rank exactly.

        Centroids are ranked by cosine against the unit query (stable
        ties to the lowest cell id); the best ``nprobe`` non-empty cells
        are opened — more if ``min_recall_fallback`` demands wider
        coverage — and their members re-ranked exactly.

        Parameters
        ----------
        vector:
            Query vector of shape ``(dim,)``, any float dtype.
        k:
            Rows to return, ``>= 1``.

        Returns
        -------
        (row_ids, scores)
            ``int64`` row indices and their exact ``float32`` cosines,
            best first, ties broken by ascending row id. May return
            fewer than ``k`` rows when the probed cells cover fewer.
        """
        if self._centroids is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        q = _unit_vector(vector)
        cell_scores = self._centroids @ q  # (C,) gemv — per query
        order = np.argsort(-cell_scores, kind="stable")
        floor = (
            int(np.ceil(self.min_recall_fallback * self._n))
            if self.min_recall_fallback > 0.0
            else 0
        )
        target = max(k, floor)
        parts: list[np.ndarray] = []
        gathered = 0
        probed = 0
        for cell in order.tolist():
            if probed >= self.nprobe and gathered >= target:
                break
            members = self._members[cell]
            if members.size == 0:
                continue  # empty cells do not spend the probe budget
            parts.append(members)
            gathered += members.size
            probed += 1
        if not parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        # Cells are disjoint, so a sort (no dedup) restores the
        # ascending-row-id invariant _top_k's tie-break relies on.
        candidates = parts[0] if len(parts) == 1 else np.sort(np.concatenate(parts))
        depth = _resolve_rerank(self.rerank, k)
        if self.quantized and candidates.size > depth:
            # Int8 pre-rank of the gathered members; only the top pool
            # pays the exact kernel. Gathering codes via fancy indexing
            # copies 1/4 the bytes a float32 gather would.
            approx = quantized_scores(
                self._codes[candidates], self._scales[candidates], q
            )
            pool = _top_k(approx, candidates, depth)
            candidates = np.sort(candidates[pool])
        # Shape-independent re-rank (see _cosine_scores): the full-probe
        # fallback therefore reproduces the exact backend bit-for-bit
        # (unquantized — the int8 pre-rank trims the candidate set).
        scores = _cosine_scores(self._unit[candidates], q)
        best = _top_k(scores, candidates, k)
        return candidates[best], scores[best]

    def query_many(
        self, vectors: np.ndarray, k: int = 10
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched approximate kNN, bit-identical to sequential queries.

        Parameters
        ----------
        vectors:
            Query matrix of shape ``(Q, dim)``, any float dtype (cast to
            float32).
        k:
            Neighbours per query, ``>= 1``.

        Returns
        -------
        list of (row_ids, scores)
            Exactly what ``[self.query(v, k) for v in vectors]``
            returns — every reduction runs through the same per-query
            1-D kernels (see :meth:`LSHIndex.query_many` for why the
            serving cache makes ``batch_matches_single`` load-bearing).
        """
        if self._centroids is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        vectors = np.asarray(vectors, dtype=np.float32)
        return [self.query(vectors[i], k) for i in range(vectors.shape[0])]

    def fresh_like(self) -> "IVFIndex":
        """A new, empty index carrying this one's tuning knobs.

        Auto-sized artefacts (anchor count, assignment center) reset so
        the next ``build`` re-derives them; explicit constructor pins
        are preserved (see :meth:`LSHIndex.fresh_like`).
        """
        return IVFIndex(
            self._num_cells_arg,
            nprobe=self.nprobe,
            min_recall_fallback=self.min_recall_fallback,
            seed=self.seed,
            center=None if self.auto_sized else self.center,
            quantized=self.quantized,
            rerank=self.rerank,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "partition" if self._external else "anchor"
        return (
            f"IVFIndex(rows={self.num_rows}, cells={self.num_cells}, "
            f"nprobe={self.nprobe}, mode={mode})"
        )
