"""kNN query indexes over an embedding matrix: exact and LSH backends.

Serving similar-node queries is the core online workload of a dynamic
embedding system (Barros et al., survey §7): given Z^t, return the k rows
most cosine-similar to a query row. Two backends share one contract:

* :class:`BruteForceIndex` — exact scan. O(N·d) per query; the ground
  truth the approximate backend is measured against.
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing
  (Charikar, 2002) with multi-table, query-directed multi-probing.
  Hashing is sign-of-projection, so cosine-similar rows collide; probing
  flips the lowest-margin bits first. Candidates from all probed buckets
  are re-ranked *exactly*, so recall is governed by candidate coverage,
  not hash luck.

Both support **incremental refresh**: after a streaming flush, only rows
whose embedding moved more than a tolerance (plus brand-new rows) are
re-normalised and re-hashed — the point of pairing the index with
GloDyNE, which by design moves only the selected ~α·|V| rows per step.
A refresh is bit-identical to a from-scratch rebuild of a fresh index
with the same constructor parameters: hyperplanes depend only on
``(dim, num_tables, num_bits, seed)`` and candidate sets are
deduplicated into sorted order before the exact re-rank.

Pure numpy, no external ANN dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BruteForceIndex", "LSHIndex", "unit_rows"]


def unit_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalised float32 copy of ``matrix`` (zero rows stay zero)."""
    matrix = np.asarray(matrix, dtype=np.float32)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


def _unit_vector(vector: np.ndarray) -> np.ndarray:
    vector = np.asarray(vector, dtype=np.float32).ravel()
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm > 0 else vector


def _top_k(scores: np.ndarray, row_ids: np.ndarray, k: int) -> np.ndarray:
    """Positions of the top-k scores, ties broken by ascending row id.

    Deterministic ordering is what makes an incremental refresh
    bit-identical to a rebuild even when bucket layouts differ.
    ``row_ids`` must be ascending (candidate sets are deduplicated into
    sorted order), so a stable sort on the negated scores already breaks
    ties by row id; the argpartition pre-pass only pays off on large
    exact scans.
    """
    k = min(k, scores.size)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if scores.size <= 1024:
        return np.argsort(-scores, kind="stable")[:k]
    pool = np.argpartition(scores, scores.size - k)[-k:]
    order = np.lexsort((row_ids[pool], -scores[pool].astype(np.float64)))
    return pool[order]


class BruteForceIndex:
    """Exact cosine kNN by full matrix scan (the recall ground truth)."""

    backend_name = "exact"
    #: ``query_many`` scores via one gemm, whose reduction order differs
    #: from the per-query gemv by up to an ulp — batched results are not
    #: guaranteed bit-identical to sequential ``query`` calls.
    batch_matches_single = False

    def __init__(self) -> None:
        self._raw: np.ndarray | None = None
        self._unit: np.ndarray | None = None
        self.last_refresh_rows = 0

    @property
    def num_rows(self) -> int:
        """Rows currently indexed (0 before the first ``build``)."""
        return 0 if self._raw is None else int(self._raw.shape[0])

    def build(self, matrix: np.ndarray) -> None:
        """(Re)build from scratch over ``matrix`` rows."""
        self._raw = np.array(matrix, dtype=np.float32)
        self._unit = unit_rows(self._raw)
        self.last_refresh_rows = self.num_rows

    def refresh(self, matrix: np.ndarray, tolerance: float = 0.0) -> int:
        """Sync to a new matrix; re-normalise only rows that moved.

        Rows ``i < num_rows`` whose max-abs change exceeds ``tolerance``
        plus all appended rows are updated. Returns how many rows were
        touched. The matrix may only grow (the store is append-only).
        """
        if self._raw is None:
            self.build(matrix)
            return self.num_rows
        matrix = np.asarray(matrix, dtype=np.float32)
        changed = _changed_rows(self._raw, matrix, tolerance)
        if changed.size:
            old_n = self._raw.shape[0]
            if matrix.shape[0] != old_n:
                raw = np.empty_like(matrix)
                raw[:old_n] = self._raw
                unit = np.empty_like(matrix)
                unit[:old_n] = self._unit
                self._raw, self._unit = raw, unit
            self._raw[changed] = matrix[changed]
            self._unit[changed] = unit_rows(matrix[changed])
        self.last_refresh_rows = int(changed.size)
        return int(changed.size)

    def query(self, vector: np.ndarray, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k rows by cosine similarity.

        Parameters
        ----------
        vector:
            Query vector of shape ``(dim,)``, any float dtype.
        k:
            Rows to return, ``>= 1`` (clipped to the matrix size).

        Returns
        -------
        (row_ids, scores)
            ``int64`` row indices and their ``float32`` cosines, best
            first, ties broken by ascending row id.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        q = _unit_vector(vector)
        scores = self._unit @ q
        rows = np.arange(scores.size, dtype=np.int64)
        best = _top_k(scores, rows, k)
        return rows[best], scores[best]

    def query_many(
        self, vectors: np.ndarray, k: int = 10
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched exact kNN: one matmul scores every query at once.

        Parameters
        ----------
        vectors:
            Query matrix of shape ``(Q, dim)``, any float dtype (cast to
            float32).
        k:
            Neighbours per query, ``>= 1``.

        Returns
        -------
        list of (row_ids, scores)
            One ``(int64 row_ids, float32 scores)`` pair per query row,
            best first.

        Notes
        -----
        The batched scan reads the matrix once per batch instead of once
        per query — the serving-style micro-batch path. Because BLAS gemm
        results depend on the batch shape, scores may differ from
        :meth:`query` in the last ulp (``batch_matches_single`` is False);
        the ranking is still exact. Callers that need bit-identical
        batched/unbatched results use the LSH backend.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = unit_rows(vectors)
        scores = self._unit @ queries.T  # (N, Q)
        rows = np.arange(scores.shape[0], dtype=np.int64)
        results = []
        for i in range(queries.shape[0]):
            column = np.ascontiguousarray(scores[:, i])
            best = _top_k(column, rows, k)
            results.append((rows[best], column[best]))
        return results


def _changed_rows(
    old: np.ndarray, new: np.ndarray, tolerance: float
) -> np.ndarray:
    """Rows of ``new`` that moved beyond ``tolerance`` or are brand new."""
    old_n, new_n = old.shape[0], new.shape[0]
    if new_n < old_n:
        raise ValueError(
            f"matrix shrank from {old_n} to {new_n} rows; the embedding "
            "store is append-only, so refresh expects growth"
        )
    if new.shape[1] != old.shape[1]:
        raise ValueError("embedding dimensionality changed between versions")
    # Cheap single-pass inequality scan first; the exact tolerance test
    # only runs on the (few) rows that changed at all.
    moved = np.flatnonzero(np.any(new[:old_n] != old, axis=1))
    if tolerance > 0.0 and moved.size:
        beyond = (
            np.max(np.abs(new[moved] - old[moved]), axis=1) > tolerance
        )
        moved = moved[beyond]
    fresh = np.arange(old_n, new_n, dtype=np.int64)
    return np.concatenate([moved, fresh]) if fresh.size else moved


class LSHIndex:
    """Random-hyperplane LSH with multi-table, multi-probe querying.

    Parameters
    ----------
    num_tables, num_bits:
        ``num_tables`` independent hash tables of ``2**num_bits`` buckets
        each. More tables / fewer bits raise recall and cost.
        ``num_bits=None`` (default) sizes the tables to the data at the
        first build — ``ceil(log2(N)) - 2``, clipped to [3, 16], i.e. a
        few rows per bucket — and freezes the choice like the
        hyperplanes; an explicit value pins it.
    min_candidates:
        Probing continues (flipping the lowest-|margin| bits first,
        query-directed multi-probe) until at least this many candidate
        rows were gathered or probes are exhausted. ``None`` derives
        ``max(24 * k, 192)`` per query.
    max_probes:
        Bit-flip rounds per table after the exact bucket (default: all
        ``num_bits``).
    seed:
        Seeds the hyperplane draw. Two indexes with equal
        ``(dim, num_tables, num_bits, seed)`` and the same ``center``
        hash identically — the anchor for refresh/rebuild equivalence.
    center:
        SGNS embeddings occupy a narrow cone (every pair of unit rows
        has high cosine), which collapses sign-of-projection hashing
        into a handful of buckets. Hashing the *residual* around the
        data mean restores discrimination, so the index hashes
        ``unit_row - center``. ``None`` (default) computes the center
        from the first ``build`` and freezes it — refreshes reuse it,
        exactly like the hyperplanes. Pass an explicit center (e.g.
        ``other_index.center``) to rebuild a serving index from scratch
        with identical hashing.
    """

    backend_name = "lsh"
    #: ``query_many`` answers are bit-identical to sequential ``query``
    #: calls — the serving layer relies on this to share one result cache
    #: between the batched and unbatched paths.
    batch_matches_single = True

    def __init__(
        self,
        num_tables: int = 8,
        num_bits: int | None = None,
        *,
        seed: int = 0,
        min_candidates: int | None = None,
        max_probes: int | None = None,
        center: np.ndarray | None = None,
    ) -> None:
        if num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if num_bits is not None and not (1 <= num_bits <= 62):
            raise ValueError("num_bits must lie in [1, 62]")
        if min_candidates is not None and min_candidates < 1:
            raise ValueError("min_candidates must be >= 1")
        self.num_tables = int(num_tables)
        self.num_bits = None if num_bits is None else int(num_bits)
        # Auto-sized tables (and an auto-derived center) may be re-sized
        # by a serving layer when the store outgrows the first build;
        # explicit values are a user's pin and must never be overridden.
        self.auto_sized = num_bits is None and center is None
        self.seed = int(seed)
        self.min_candidates = min_candidates
        self._max_probes_arg = max_probes
        self.max_probes = 0  # resolved once num_bits is known
        self._planes: np.ndarray | None = None  # (T*B, d) float32
        self._pow2: np.ndarray | None = None
        self._center: np.ndarray | None = (
            None if center is None else np.asarray(center, dtype=np.float32)
        )
        self._center_proj: np.ndarray | None = None  # planes @ center
        # Row buffers are capacity-doubled: the live rows are [:_n].
        self._n = 0
        self._raw: np.ndarray | None = None
        self._unit: np.ndarray | None = None
        self._codes: np.ndarray | None = None  # (N, T) int64 bucket keys
        self._tables: list[dict[int, np.ndarray]] = []
        self.last_refresh_rows = 0

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Rows currently indexed (0 before the first ``build``)."""
        return self._n

    @property
    def center(self) -> np.ndarray | None:
        """Frozen hashing center (copy); None before the first build."""
        return None if self._center is None else self._center.copy()

    def _ensure_planes(self, dim: int, num_rows: int) -> None:
        if self._planes is None:
            if self.num_bits is None:
                # A few rows per bucket: tables sized to the first build,
                # then frozen (refreshes must hash identically).
                self.num_bits = int(
                    np.clip(np.ceil(np.log2(max(num_rows, 2))) - 2, 3, 16)
                )
            self.max_probes = (
                self.num_bits
                if self._max_probes_arg is None
                else min(self._max_probes_arg, self.num_bits)
            )
            self._pow2 = (1 << np.arange(self.num_bits, dtype=np.int64))
            rng = np.random.default_rng(self.seed)
            self._planes = rng.standard_normal(
                (self.num_tables * self.num_bits, dim)
            ).astype(np.float32)
        elif self._planes.shape[1] != dim:
            raise ValueError(
                f"index was built for dim {self._planes.shape[1]}, got {dim}"
            )

    def _hash_rows(self, unit: np.ndarray) -> np.ndarray:
        """Bucket key per (row, table): sign-pattern packed to int64.

        ``x @ planes.T - center_proj`` equals ``(x - center) @ planes.T``
        with the center projection hoisted out of the per-row work.
        """
        bits = (unit @ self._planes.T - self._center_proj) > 0.0  # (n, T*B)
        bits = bits.reshape(unit.shape[0], self.num_tables, self.num_bits)
        return bits @ self._pow2  # (n, T)

    # ------------------------------------------------------------------
    def _grow_to(self, size: int, dim: int) -> None:
        """Capacity-double the row buffers (amortised O(1) per new row)."""
        capacity = 0 if self._raw is None else self._raw.shape[0]
        if size <= capacity:
            return
        new_capacity = max(16, capacity)
        while new_capacity < size:
            new_capacity *= 2
        raw = np.empty((new_capacity, dim), dtype=np.float32)
        unit = np.empty((new_capacity, dim), dtype=np.float32)
        codes = np.empty((new_capacity, self.num_tables), dtype=np.int64)
        if self._n:
            raw[: self._n] = self._raw[: self._n]
            unit[: self._n] = self._unit[: self._n]
            codes[: self._n] = self._codes[: self._n]
        self._raw, self._unit, self._codes = raw, unit, codes

    def build(self, matrix: np.ndarray) -> None:
        """Hash every row into all tables from scratch."""
        matrix = np.asarray(matrix, dtype=np.float32)
        n, dim = matrix.shape
        self._ensure_planes(dim, n)
        self._n = n
        self._raw = np.array(matrix)
        self._unit = unit_rows(matrix)
        if self._center is None:
            self._center = self._unit.mean(axis=0)
        elif self._center.shape != (dim,):
            raise ValueError("center dimensionality does not match matrix")
        self._center_proj = self._planes @ self._center
        self._codes = self._hash_rows(self._unit)
        self._tables = []
        for t in range(self.num_tables):
            table: dict[int, np.ndarray] = {}
            if n:
                codes = self._codes[:, t]
                order = np.argsort(codes, kind="stable")
                sorted_codes = codes[order]
                boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
                for chunk in np.split(order, boundaries):
                    table[int(codes[chunk[0]])] = chunk
            self._tables.append(table)
        self.last_refresh_rows = n

    def refresh(self, matrix: np.ndarray, tolerance: float = 0.0) -> int:
        """Re-hash only rows that moved beyond ``tolerance`` (plus new rows).

        Returns the number of rows re-hashed. Equivalent to
        ``build(matrix)`` on a fresh index with the same frozen
        configuration (seed, bits, center) — buckets may order members
        differently internally, but query results are identical because
        candidates are deduplicated into sorted order before the exact
        re-rank.
        """
        if self._raw is None:
            self.build(matrix)
            return self.num_rows
        matrix = np.asarray(matrix, dtype=np.float32)
        old_n = self._n
        changed = _changed_rows(self._raw[:old_n], matrix, tolerance)
        if not changed.size:
            self.last_refresh_rows = 0
            return 0
        self._grow_to(matrix.shape[0], matrix.shape[1])
        self._n = matrix.shape[0]
        self._raw[changed] = matrix[changed]
        new_unit = unit_rows(matrix[changed])
        self._unit[changed] = new_unit
        new_codes = self._hash_rows(new_unit)  # (len(changed), T)
        # `changed` is ascending with moved rows (< old_n) first.
        num_moved = int(np.searchsorted(changed, old_n))
        changed_list = changed.tolist()
        new_codes_list = new_codes.tolist()
        old_codes_list = self._codes[changed[:num_moved]].tolist()
        for t in range(self.num_tables):
            table = self._tables[t]
            # Evict moved rows whose bucket changed, grouped per bucket.
            evict: dict[int, list[int]] = {}
            insert: dict[int, list[int]] = {}
            for j, row in enumerate(changed_list):
                code = new_codes_list[j][t]
                if j < num_moved:
                    old_code = old_codes_list[j][t]
                    if old_code == code:
                        continue
                    evict.setdefault(old_code, []).append(row)
                insert.setdefault(code, []).append(row)
            for code, rows in evict.items():
                gone = set(rows)
                kept = [x for x in table[code].tolist() if x not in gone]
                if kept:
                    table[code] = np.asarray(kept, dtype=np.int64)
                else:
                    del table[code]
            for code, rows in insert.items():
                fresh = np.asarray(rows, dtype=np.int64)
                existing = table.get(code)
                table[code] = (
                    fresh if existing is None else np.concatenate([existing, fresh])
                )
        self._codes[changed] = new_codes
        self.last_refresh_rows = int(changed.size)
        return int(changed.size)

    # ------------------------------------------------------------------
    def _gather_and_rank(
        self, q: np.ndarray, codes: list, proj: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared query core: bucket gather, multi-probe, exact re-rank.

        ``codes`` is one bucket key per table (Python ints), ``proj`` the
        (T*B,) hyperplane projections of the unit query ``q``.
        """
        tables = self._tables
        parts: list[np.ndarray] = []
        gathered = 0
        for t, code in enumerate(codes):
            bucket = tables[t].get(code)
            if bucket is not None:
                parts.append(bucket)
                gathered += bucket.size
        target = (
            self.min_candidates
            if self.min_candidates is not None
            else max(24 * k, 192)
        )
        if gathered < target and self.max_probes:
            # Query-directed probing: flip the least confident bits first.
            flip_order = np.argsort(
                np.abs(proj).reshape(self.num_tables, self.num_bits), axis=1
            ).tolist()
            for r in range(self.max_probes):
                for t, code in enumerate(codes):
                    bucket = tables[t].get(code ^ (1 << flip_order[t][r]))
                    if bucket is not None:
                        parts.append(bucket)
                        gathered += bucket.size
                if gathered >= target:
                    break
        if not parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        if len(parts) == 1:
            # One bucket has no duplicates, but refresh appends rows out
            # of order and _top_k's tie-break needs ascending row ids.
            candidates = np.sort(parts[0])
        else:
            # Sorted dedup; a Python set beats np.unique by ~5x at the
            # few-hundred-candidate sizes this serves.
            merged: set[int] = set()
            for part in parts:
                merged.update(part.tolist())
            candidates = np.fromiter(
                sorted(merged), dtype=np.int64, count=len(merged)
            )
        scores = self._unit[candidates] @ q
        best = _top_k(scores, candidates, k)
        return candidates[best], scores[best]

    def query(self, vector: np.ndarray, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k by cosine similarity.

        Probes the exact bucket of each table first, then flips bits in
        ascending |projection| order (the least confident bits) until
        ``min_candidates`` rows were gathered; the candidate set is then
        re-ranked exactly.

        Parameters
        ----------
        vector:
            Query vector of shape ``(dim,)``, any float dtype.
        k:
            Rows to return, ``>= 1``.

        Returns
        -------
        (row_ids, scores)
            ``int64`` row indices and their exact ``float32`` cosines,
            best first, ties broken by ascending row id. May return
            fewer than ``k`` rows when probing gathered fewer
            candidates.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        q = _unit_vector(vector)
        proj = self._planes @ q - self._center_proj  # (T*B,)
        codes = (
            (proj > 0.0).reshape(self.num_tables, self.num_bits) @ self._pow2
        ).tolist()
        return self._gather_and_rank(q, codes, proj, k)

    def query_many(
        self, vectors: np.ndarray, k: int = 10
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched approximate kNN, bit-identical to sequential queries.

        Parameters
        ----------
        vectors:
            Query matrix of shape ``(Q, dim)``, any float dtype (cast to
            float32).
        k:
            Neighbours per query, ``>= 1``.

        Returns
        -------
        list of (row_ids, scores)
            One ``(int64 row_ids, float32 scores)`` pair per query row,
            best first — exactly what ``[self.query(v, k) for v in
            vectors]`` returns.

        Notes
        -----
        This is the serving micro-batch dispatch target
        (:class:`repro.server.MicroBatcher`), and its contract is
        *determinism over kernel fusion*: every per-query reduction
        (normalisation, hyperplane projection, re-rank) runs through the
        same 1-D kernels as :meth:`query`, because BLAS gemm output
        varies with the batch shape — a fused ``(Q, d) @ (d, T*B)``
        projection can flip a near-zero hash bit or reorder the probe
        schedule, making batched answers diverge from unbatched ones.
        Serving caches results across both paths, so
        ``batch_matches_single`` is load-bearing, not cosmetic. The
        batch-level savings live above this call (one index/version
        resolution, one cache sweep, one event-loop dispatch); the probe
        work was always per-query.
        """
        if self._unit is None:
            raise RuntimeError("index is empty — call build() first")
        if k < 1:
            raise ValueError("k must be >= 1")
        vectors = np.asarray(vectors, dtype=np.float32)
        return [self.query(vectors[i], k) for i in range(vectors.shape[0])]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LSHIndex(rows={self.num_rows}, tables={self.num_tables}, "
            f"bits={self.num_bits})"
        )
