"""Shard an :class:`EmbeddingStore` into per-worker views — cells ≙ shards.

One asyncio process tops out around one core of kNN throughput
(``benchmarks/bench_server_qps.py``); the way past it is horizontal:
split the store into ``num_shards`` disjoint row sets, give each to its
own worker process (:mod:`repro.server.worker`), and scatter-gather
queries across them (:mod:`repro.server.sharding`). This module is the
data side of that split:

* :func:`stable_shard` — a process-stable hash of a node id (Python's
  builtin ``hash`` is salted per process and cannot place the same node
  on the same shard twice);
* :class:`ShardAssignment` — the node → shard ownership map the router
  uses to proxy single-node routes;
* :func:`split_store` — the splitter. When the head version carries
  ``partition_cells`` metadata (GloDyNE's Step 1 cells, maintained by
  :class:`repro.partition.incremental.IncrementalPartitioner`), shards
  follow the partition (``cell % num_shards``) so co-located nodes stay
  co-located; otherwise ownership falls back to :func:`stable_shard`.

Every parent version is re-published into every shard store with the
*same version id*, so a ``version=``-pinned query means the same thing
on every worker as on the parent. Shard matrices keep their rows in
ascending parent-row order — together with the exact backends'
shape-independent scoring kernel (``index._cosine_scores``) that is
what makes a scatter-gathered top-k merge bit-identical to the
unsharded answer.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Mapping

import numpy as np

from repro.serving.store import EmbeddingStore

Node = Hashable

__all__ = ["ShardAssignment", "split_store", "stable_shard"]


def _node_key(node: Node) -> bytes:
    """Canonical bytes for a node id, stable across processes and runs.

    JSON keeps distinct ids distinct (int ``3`` → ``b"3"``, str ``"3"``
    → ``b'"3"'``) and matches how ids travel through the HTTP layer;
    non-JSON-serialisable ids fall back to their ``repr``.
    """
    try:
        encoded = json.dumps(node, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        encoded = repr(node)
    return encoded.encode("utf-8")


def stable_shard(node: Node, num_shards: int) -> int:
    """Hash ``node`` onto ``[0, num_shards)``, stably across processes.

    blake2b of the canonical node key — unlike builtin ``hash``, which
    is salted per interpreter, the same node always lands on the same
    shard no matter which process (router, worker, test) asks.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    digest = hashlib.blake2b(_node_key(node), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


@dataclass(frozen=True)
class ShardAssignment:
    """Node → shard ownership for one sharded store.

    Attributes
    ----------
    num_shards:
        How many shards the store was split into.
    source:
        ``"partition_cells"`` when ownership follows the head version's
        published Step 1 cells, ``"hash"`` for the
        :func:`stable_shard` fallback.
    owner:
        Explicit per-node shard ids (populated in ``partition_cells``
        mode; empty in hash mode, where ownership is computed).
    """

    num_shards: int
    source: str
    owner: Mapping[Node, int] = field(default_factory=dict, repr=False)

    def owner_of(self, node: Node) -> int:
        """The shard that owns ``node`` (hash fallback for unseen nodes).

        Nodes that joined the graph after the split (published to the
        parent but not yet re-split) hash-place deterministically, so a
        router never has to answer "nobody owns this id".
        """
        explicit = self.owner.get(node)
        if explicit is not None:
            return int(explicit)
        return stable_shard(node, self.num_shards)


def split_store(
    store: EmbeddingStore,
    num_shards: int,
    *,
    store_dir: "str | Path | None" = None,
) -> tuple[list[EmbeddingStore], ShardAssignment]:
    """Split ``store`` into ``num_shards`` disjoint per-shard stores.

    Ownership is decided once, at the *head* version: by published
    ``partition_cells`` metadata (``cell % num_shards``) when present
    and row-aligned, else by :func:`stable_shard` of the node id. Every
    parent version is then re-published into each shard store under the
    same version id (rows in ascending parent-row order), so pinned
    time travel and the head mean the same thing on every shard.

    Tiering is preserved: a tiered parent (``store_dir`` set) yields
    tiered shards — each shard spills its own cold versions under
    ``<parent store_dir>/shards/shard-<i>`` (or ``store_dir`` here) with
    the parent's ``hot_versions`` window, so sharding a long history
    never re-residents it N times. Compacted (tombstoned) parent
    versions stay tombstoned at the same ids on every shard.

    Parameters
    ----------
    store:
        The parent store; never mutated. Must hold >= 1 live version.
    num_shards:
        Shards to split into, ``>= 1``.
    store_dir:
        Spill base directory for the shard stores (shard ``i`` uses
        ``store_dir/shard-<i>``). Default: derived from the parent's
        ``store_dir`` when tiered, else shards stay all-RAM.

    Returns
    -------
    (shard_stores, assignment)
        One :class:`EmbeddingStore` per shard plus the ownership map.

    Raises
    ------
    ValueError
        On an empty parent store, ``num_shards < 1``, or a split that
        would leave some shard empty at some version (stores cannot
        hold zero-row versions — use fewer shards).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if store.num_versions == 0:
        raise ValueError("cannot split an empty store (publish first)")

    head = store.latest
    cells = head.metadata.get("partition_cells")
    if cells is not None and len(cells) == head.num_nodes:
        owner = {
            node: int(cell) % num_shards
            for node, cell in zip(head.nodes, cells)
        }
        assignment = ShardAssignment(num_shards, "partition_cells", owner)
    else:
        assignment = ShardAssignment(num_shards, "hash")

    if store_dir is None and store.store_dir is not None:
        store_dir = store.store_dir / "shards"
    shards = [
        EmbeddingStore(
            store_dir=(
                None if store_dir is None else Path(store_dir) / f"shard-{i}"
            ),
            hot_versions=store.hot_versions,
        )
        for i in range(num_shards)
    ]
    tombstoned = set(store.tombstones)
    for version_id in range(store.num_versions):
        if version_id in tombstoned:
            # Keep the id space aligned with the parent: a compacted
            # version is tombstoned, not renumbered, on every shard.
            for shard in shards:
                shard._append_tombstone()
            continue
        record = store.version(version_id)
        by_shard: list[list[int]] = [[] for _ in range(num_shards)]
        for row, node in enumerate(record.nodes):
            by_shard[assignment.owner_of(node)].append(row)
        for shard_id, rows in enumerate(by_shard):
            if not rows:
                raise ValueError(
                    f"shard {shard_id} owns no rows at version "
                    f"{record.version} ({record.num_nodes} nodes across "
                    f"{num_shards} shards) — use fewer shards"
                )
            index = np.asarray(rows, dtype=np.int64)
            metadata = dict(record.metadata)
            record_cells = record.metadata.get("partition_cells")
            if record_cells is not None and len(record_cells) == record.num_nodes:
                # Slice this version's own cells so the shard's IVF
                # backend still sees a row-aligned coarse quantizer.
                metadata["partition_cells"] = [
                    int(record_cells[row]) for row in rows
                ]
            metadata["shard"] = {"index": shard_id, "of": num_shards}
            published = shards[shard_id].publish(
                (
                    tuple(record.nodes[row] for row in rows),
                    record.matrix[index],
                ),
                time_step=record.time_step,
                metadata=metadata,
            )
            # Same id on every shard — pinned queries stay meaningful.
            assert published == record.version
    return shards, assignment
