"""Snapshot-versioned embedding store — the serving system of record.

Every GloDyNE update (snapshot mode) or StreamingGloDyNE flush produces a
full embedding map Z^t. The store keeps each one as an immutable
*version*: an append-only sequence of ``(nodes, float32 matrix, metadata)``
records. Versions are what make online serving safe — a query pinned to
version ``v`` keeps reading the same rows while the trainer publishes
``v+1``, and "what did this node look like three flushes ago"
(:meth:`EmbeddingService.embed_at <repro.serving.service.EmbeddingService.embed_at>`)
is a plain list index, not a replay.

Storage is float32: serving reads never need the float64 training
precision, and halving the bytes doubles how many versions fit in memory.
Persistence reuses the JSON node-column codec of
:mod:`repro.core.persistence` so arbitrary str/int node ids survive a
save/load round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Mapping, Sequence

import json

import numpy as np

from repro.base import EmbeddingMap
from repro.core.persistence import decode_node_column, encode_node_column

Node = Hashable

STORE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class VersionRecord:
    """One published embedding snapshot.

    ``matrix`` row ``i`` is the embedding of ``nodes[i]``; ``row_of``
    inverts that. The matrix is marked read-only — serving consumers share
    it zero-copy and must not mutate history.
    """

    version: int
    time_step: int
    nodes: tuple[Node, ...]
    matrix: np.ndarray  # float32, shape (len(nodes), dim), read-only
    metadata: dict = field(default_factory=dict)
    row_of: dict[Node, int] = field(default_factory=dict, repr=False)

    @property
    def num_nodes(self) -> int:
        """Rows in this version (``matrix.shape[0]``)."""
        return len(self.nodes)

    @property
    def dim(self) -> int:
        """Embedding dimensionality (``matrix.shape[1]``)."""
        return int(self.matrix.shape[1])

    def vector(self, node: Node) -> np.ndarray:
        """Embedding of ``node`` at this version (read-only view)."""
        try:
            return self.matrix[self.row_of[node]]
        except KeyError:
            raise KeyError(
                f"node {node!r} is not present in version {self.version}"
            ) from None

    def as_map(self) -> EmbeddingMap:
        """Materialise the version as a node -> vector dict (copies rows)."""
        return {node: self.matrix[i].copy() for i, node in enumerate(self.nodes)}


class EmbeddingStore:
    """Append-only sequence of :class:`VersionRecord` embedding snapshots."""

    def __init__(self) -> None:
        self._versions: list[VersionRecord] = []

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        embeddings: EmbeddingMap | tuple[Sequence[Node], np.ndarray],
        *,
        time_step: int | None = None,
        metadata: Mapping | None = None,
    ) -> int:
        """Append a new version; returns its id (0-based, monotonic).

        Parameters
        ----------
        embeddings:
            Either the ``{node: vector}`` map an update/flush returned,
            or an already-aligned ``(nodes, matrix)`` pair with
            ``matrix`` of shape ``(len(nodes), dim)`` (any float dtype —
            rows are copied, down-cast to float32, and frozen).
        time_step:
            Trainer time step the version belongs to (defaults to the
            version id).
        metadata:
            JSON-ish provenance stored verbatim on the record (the
            streaming engine tags trigger / event count / latency).

        Returns
        -------
        int
            The new version id, ``num_versions - 1``.
        """
        if isinstance(embeddings, tuple):
            nodes, matrix = embeddings
            nodes = tuple(nodes)
            # np.array (not asarray): the store must own the rows it
            # freezes, never the caller's buffer.
            matrix = np.array(matrix, dtype=np.float32)
            if matrix.ndim != 2 or matrix.shape[0] != len(nodes):
                raise ValueError(
                    "matrix must be 2-D with one row per node "
                    f"(got shape {matrix.shape} for {len(nodes)} nodes)"
                )
        else:
            nodes = tuple(embeddings)
            if not nodes:
                raise ValueError("cannot publish an empty embedding map")
            matrix = np.stack(
                [np.asarray(embeddings[n], dtype=np.float32) for n in nodes]
            )
        if matrix.size == 0:
            raise ValueError("cannot publish an empty embedding matrix")
        matrix.setflags(write=False)
        version = len(self._versions)
        record = VersionRecord(
            version=version,
            time_step=version if time_step is None else int(time_step),
            nodes=nodes,
            matrix=matrix,
            metadata=dict(metadata) if metadata else {},
            row_of={node: i for i, node in enumerate(nodes)},
        )
        self._versions.append(record)
        return version

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def num_versions(self) -> int:
        """Published versions so far (the next publish gets this id)."""
        return len(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def latest(self) -> VersionRecord:
        """The head version (``LookupError`` before the first publish)."""
        if not self._versions:
            raise LookupError("store has no published versions yet")
        return self._versions[-1]

    def resolve_version(self, version: int | None) -> int:
        """Normalise ``None`` / negative ids to an absolute version id."""
        if not self._versions:
            raise LookupError("store has no published versions yet")
        if version is None:
            return len(self._versions) - 1
        index = int(version)
        if index < 0:
            index += len(self._versions)
        if not (0 <= index < len(self._versions)):
            raise LookupError(
                f"version {version} not in store (have 0..{len(self) - 1})"
            )
        return index

    def version(self, version: int | None = None) -> VersionRecord:
        """Fetch a version record (default / ``None`` / ``-1``: latest)."""
        return self._versions[self.resolve_version(version)]

    def vector(self, node: Node, version: int | None = None) -> np.ndarray:
        """Embedding of ``node`` at ``version`` (read-only view)."""
        return self.version(version).vector(node)

    def __iter__(self):
        return iter(self._versions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._versions:
            return "EmbeddingStore(versions=0)"
        head = self._versions[-1]
        return (
            f"EmbeddingStore(versions={len(self)}, "
            f"latest={head.num_nodes}x{head.dim})"
        )


# ----------------------------------------------------------------------
# persistence (single .npz per store)
# ----------------------------------------------------------------------
def save_store(store: EmbeddingStore, path: str | Path) -> None:
    """Serialise a store to one ``.npz`` archive.

    Layout: a JSON manifest (format version + per-version time step and
    metadata) plus, per version ``i``, a node column ``v{i}_nodes`` and a
    float32 matrix ``v{i}_matrix``.
    """
    manifest = {
        "format_version": STORE_FORMAT_VERSION,
        "versions": [
            {
                "version": record.version,
                "time_step": record.time_step,
                "metadata": record.metadata,
            }
            for record in store
        ],
    }
    arrays: dict[str, np.ndarray] = {
        "manifest": np.array([json.dumps(manifest)], dtype=object)
    }
    for record in store:
        arrays[f"v{record.version}_nodes"] = encode_node_column(record.nodes)
        arrays[f"v{record.version}_matrix"] = np.asarray(record.matrix)
    # Write through a handle so the archive lands at exactly ``path``
    # (np.savez silently appends .npz to suffix-less names otherwise,
    # leaving the caller's path dangling).
    with open(path, "wb") as handle:
        np.savez(handle, allow_pickle=True, **arrays)


def load_store(path: str | Path) -> EmbeddingStore:
    """Restore a store saved by :func:`save_store`."""
    archive = np.load(path, allow_pickle=True)
    manifest = json.loads(str(archive["manifest"][0]))
    fmt = int(manifest["format_version"])
    if fmt != STORE_FORMAT_VERSION:
        raise ValueError(
            f"store format {fmt} != supported {STORE_FORMAT_VERSION}"
        )
    store = EmbeddingStore()
    for entry in manifest["versions"]:
        v = int(entry["version"])
        nodes = decode_node_column(archive[f"v{v}_nodes"])
        matrix = archive[f"v{v}_matrix"]
        store.publish(
            (nodes, matrix),
            time_step=int(entry["time_step"]),
            metadata=entry.get("metadata") or {},
        )
    return store
