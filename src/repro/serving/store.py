"""Snapshot-versioned embedding store — the serving system of record.

Every GloDyNE update (snapshot mode) or StreamingGloDyNE flush produces a
full embedding map Z^t. The store keeps each one as an immutable
*version*: an append-only sequence of ``(nodes, float32 matrix, metadata)``
records. Versions are what make online serving safe — a query pinned to
version ``v`` keeps reading the same rows while the trainer publishes
``v+1``, and "what did this node look like three flushes ago"
(:meth:`EmbeddingService.embed_at <repro.serving.service.EmbeddingService.embed_at>`)
is a plain list index, not a replay.

Storage is float32 and **tiered** (:mod:`repro.serving.storage`): with a
``store_dir``, only the hot window (the newest ``hot_versions`` plus any
pinned versions) stays RAM-resident; older versions spill to mmap-backed
files and page back in transparently through :meth:`EmbeddingStore.
version` / :meth:`EmbeddingStore.vector`, bit-identical to the resident
original. A :meth:`EmbeddingStore.compact` pass tombstones history by
policy (``keep_head_n`` + ``keep_every_k``) without renumbering — ids
stay stable, and :meth:`EmbeddingStore.resolve_version` degrades to the
nearest kept version only under an explicit ``nearest=True``.
Persistence reuses the JSON node-column codec of
:mod:`repro.core.persistence` so arbitrary str/int node ids survive a
save/load round-trip.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Mapping, Sequence

import json

import numpy as np

from repro.base import EmbeddingMap
from repro.core.persistence import decode_node_column, encode_node_column
from repro.serving.storage import ColdVersionStorage, CompactionPolicy

Node = Hashable

STORE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class VersionRecord:
    """One published embedding snapshot.

    ``matrix`` row ``i`` is the embedding of ``nodes[i]``; ``row_of``
    inverts that. The matrix is marked read-only — serving consumers share
    it zero-copy and must not mutate history. A record paged in from a
    tiered store's cold files carries a read-only ``np.memmap`` instead
    of a RAM-resident array; the values are bit-identical.
    """

    version: int
    time_step: int
    nodes: tuple[Node, ...]
    matrix: np.ndarray  # float32, shape (len(nodes), dim), read-only
    metadata: dict = field(default_factory=dict)
    row_of: dict[Node, int] = field(default_factory=dict, repr=False)

    @property
    def num_nodes(self) -> int:
        """Rows in this version (``matrix.shape[0]``)."""
        return len(self.nodes)

    @property
    def dim(self) -> int:
        """Embedding dimensionality (``matrix.shape[1]``)."""
        return int(self.matrix.shape[1])

    def vector(self, node: Node) -> np.ndarray:
        """Embedding of ``node`` at this version (read-only view)."""
        try:
            return self.matrix[self.row_of[node]]
        except KeyError:
            raise KeyError(
                f"node {node!r} is not present in version {self.version}"
            ) from None

    def as_map(self) -> EmbeddingMap:
        """Materialise the version as a node -> vector dict (copies rows)."""
        return {node: self.matrix[i].copy() for i, node in enumerate(self.nodes)}


class EmbeddingStore:
    """Append-only sequence of :class:`VersionRecord` embedding snapshots.

    Parameters
    ----------
    store_dir:
        Spill directory enabling the tiered mode: versions that leave
        the hot window are written to mmap-backed files
        (:class:`repro.serving.storage.ColdVersionStorage`) and dropped
        from RAM, paged back in transparently (and LRU-cached) on read.
        ``None`` (default) keeps every version resident — the historical
        behaviour.
    hot_versions:
        Size of the RAM-resident head window in tiered mode, ``>= 1``.
        The newest ``hot_versions`` versions plus any pinned versions
        stay float32-resident; everything older spills.
    page_cache:
        Cold versions kept paged-in (as memmap-backed records) at once,
        ``>= 1``; eviction is LRU. Each entry's *matrix* costs no
        guaranteed RAM (the kernel reclaims cold mmap pages under
        pressure), but the node tuple and row index are real objects,
        so the cache is bounded.
    """

    def __init__(
        self,
        *,
        store_dir: str | Path | None = None,
        hot_versions: int = 1,
        page_cache: int = 2,
    ) -> None:
        if hot_versions < 1:
            raise ValueError("hot_versions must be >= 1")
        if page_cache < 1:
            raise ValueError("page_cache must be >= 1")
        self.hot_versions = int(hot_versions)
        self.page_cache = int(page_cache)
        self._cold = (
            None if store_dir is None else ColdVersionStorage(store_dir)
        )
        # One slot per published id: the RAM-resident record, or None
        # when the version is spilled to disk or tombstoned.
        self._records: list[VersionRecord | None] = []
        self._spilled: set[int] = set()
        self._tombstones: set[int] = set()
        self._pins: set[int] = set()
        # LRU of paged-in cold records (transient — dropped on pickle).
        self._paged: OrderedDict[int, VersionRecord] = OrderedDict()

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        embeddings: EmbeddingMap | tuple[Sequence[Node], np.ndarray],
        *,
        time_step: int | None = None,
        metadata: Mapping | None = None,
    ) -> int:
        """Append a new version; returns its id (0-based, monotonic).

        Parameters
        ----------
        embeddings:
            Either the ``{node: vector}`` map an update/flush returned,
            or an already-aligned ``(nodes, matrix)`` pair with
            ``matrix`` of shape ``(len(nodes), dim)`` (any float dtype —
            rows are copied, down-cast to float32, and frozen).
        time_step:
            Trainer time step the version belongs to (defaults to the
            version id).
        metadata:
            JSON-ish provenance stored verbatim on the record (the
            streaming engine tags trigger / event count / latency).

        Returns
        -------
        int
            The new version id, ``num_versions - 1``. In tiered mode the
            publish also spills whatever the new head pushed out of the
            hot window.
        """
        if isinstance(embeddings, tuple):
            nodes, matrix = embeddings
            nodes = tuple(nodes)
            # np.array (not asarray): the store must own the rows it
            # freezes, never the caller's buffer.
            matrix = np.array(matrix, dtype=np.float32)
            if matrix.ndim != 2 or matrix.shape[0] != len(nodes):
                raise ValueError(
                    "matrix must be 2-D with one row per node "
                    f"(got shape {matrix.shape} for {len(nodes)} nodes)"
                )
        else:
            nodes = tuple(embeddings)
            if not nodes:
                raise ValueError("cannot publish an empty embedding map")
            matrix = np.stack(
                [np.asarray(embeddings[n], dtype=np.float32) for n in nodes]
            )
        if matrix.size == 0:
            raise ValueError("cannot publish an empty embedding matrix")
        matrix.setflags(write=False)
        version = len(self._records)
        record = VersionRecord(
            version=version,
            time_step=version if time_step is None else int(time_step),
            nodes=nodes,
            matrix=matrix,
            metadata=dict(metadata) if metadata else {},
            row_of={node: i for i, node in enumerate(nodes)},
        )
        self._records.append(record)
        self._spill_cold()
        return version

    def _append_tombstone(self) -> int:
        """Append a tombstoned id (restore/split plumbing, not a publish)."""
        version = len(self._records)
        self._records.append(None)
        self._tombstones.add(version)
        return version

    def _spill_cold(self) -> None:
        """Move RAM-resident versions outside the hot window to disk."""
        if self._cold is None:
            return
        head = len(self._records) - 1
        floor = head - self.hot_versions + 1
        for version in range(min(floor, head + 1)):
            record = self._records[version]
            if record is None or version in self._pins:
                continue
            self._cold.spill(record)
            self._spilled.add(version)
            self._records[version] = None

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, version: int | None = None) -> int:
        """Keep a version RAM-resident and immune to spill/compaction.

        A cold version is paged in and materialised back to a resident
        float32 array. Returns the resolved version id. Pins are
        idempotent.
        """
        resolved = self.resolve_version(version)
        if self._records[resolved] is None:
            record = self._load_cold(resolved)
            matrix = np.array(record.matrix)  # memmap -> resident copy
            matrix.setflags(write=False)
            self._records[resolved] = VersionRecord(
                version=record.version,
                time_step=record.time_step,
                nodes=record.nodes,
                matrix=matrix,
                metadata=record.metadata,
                row_of=record.row_of,
            )
            self._paged.pop(resolved, None)
        self._pins.add(resolved)
        return resolved

    def unpin(self, version: int | None = None) -> int:
        """Drop a pin; the version becomes spillable/compactable again.

        Returns the resolved version id. The spill happens lazily (at
        the next publish or explicit :meth:`_spill_cold` via publish) —
        already-spilled files are reused, not rewritten.
        """
        resolved = self.resolve_version(version)
        self._pins.discard(resolved)
        self._spill_cold()
        return resolved

    @property
    def pinned(self) -> tuple[int, ...]:
        """Currently pinned version ids, ascending."""
        return tuple(sorted(self._pins))

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(
        self,
        policy: CompactionPolicy | None = None,
        *,
        keep_head_n: int | None = None,
        keep_every_k: int | None = None,
    ) -> list[int]:
        """Tombstone historical versions by policy; return the dropped ids.

        Survivors are decided by :meth:`repro.serving.storage.
        CompactionPolicy.survivors`: the newest ``keep_head_n`` live
        versions, every ``keep_every_k``-th id, and every pin. Dropped
        versions free their RAM and their cold files, and their ids
        become tombstones: reads raise ``LookupError`` unless the caller
        opts into ``nearest=True`` degradation. Ids are never renumbered.

        Parameters
        ----------
        policy:
            An explicit :class:`~repro.serving.storage.CompactionPolicy`;
            mutually exclusive with the keyword shorthands.
        keep_head_n, keep_every_k:
            Shorthand for ``CompactionPolicy(keep_head_n, keep_every_k)``
            (``keep_head_n`` defaults to 1).
        """
        if policy is None:
            policy = CompactionPolicy(
                keep_head_n=1 if keep_head_n is None else int(keep_head_n),
                keep_every_k=keep_every_k,
            )
        elif keep_head_n is not None or keep_every_k is not None:
            raise ValueError("pass either a policy or the keyword knobs")
        live = [
            v for v in range(len(self._records)) if v not in self._tombstones
        ]
        keep = policy.survivors(live, self._pins)
        dropped = [v for v in live if v not in keep]
        for version in dropped:
            self._records[version] = None
            self._paged.pop(version, None)
            if version in self._spilled:
                self._spilled.discard(version)
                if self._cold is not None:
                    self._cold.delete(version)
            self._tombstones.add(version)
        return dropped

    @property
    def tombstones(self) -> tuple[int, ...]:
        """Compacted-away version ids, ascending."""
        return tuple(sorted(self._tombstones))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def num_versions(self) -> int:
        """Published versions so far (the next publish gets this id).

        Tombstoned ids still count — the id space never renumbers.
        """
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def store_dir(self) -> Path | None:
        """The tiered spill directory (``None`` in all-RAM mode)."""
        return None if self._cold is None else self._cold.directory

    @property
    def latest(self) -> VersionRecord:
        """The head version (``LookupError`` before the first publish)."""
        if not self._records:
            raise LookupError("store has no published versions yet")
        return self._record_at(len(self._records) - 1)

    def resolve_version(
        self, version: int | None, *, nearest: bool = False
    ) -> int:
        """Normalise ``None`` / negative ids to an absolute version id.

        Parameters
        ----------
        version:
            ``None`` / ``-1`` mean the head; negatives count back from
            it; out-of-range ids raise ``LookupError``.
        nearest:
            How to treat a compacted-away (tombstoned) id: ``False``
            (default) raises ``LookupError`` naming the compaction;
            ``True`` degrades to the nearest kept version by id
            distance, ties broken toward the earlier (older) version.
        """
        if not self._records:
            raise LookupError("store has no published versions yet")
        if version is None:
            index = len(self._records) - 1
        else:
            index = int(version)
            if index < 0:
                index += len(self._records)
            if not (0 <= index < len(self._records)):
                raise LookupError(
                    f"version {version} not in store (have 0..{len(self) - 1})"
                )
        if index not in self._tombstones:
            return index
        if not nearest:
            raise LookupError(
                f"version {index} was compacted away; pass nearest=True to "
                "degrade to the nearest kept version"
            )
        for distance in range(1, len(self._records)):
            below = index - distance
            if below >= 0 and below not in self._tombstones:
                return below
            above = index + distance
            if above < len(self._records) and above not in self._tombstones:
                return above
        raise LookupError("store has no live versions left")  # pragma: no cover

    def version(
        self, version: int | None = None, *, nearest: bool = False
    ) -> VersionRecord:
        """Fetch a version record (default / ``None`` / ``-1``: latest).

        Cold versions page in transparently (bit-identical to the
        resident original, matrix backed by a read-only ``np.memmap``).
        ``nearest=True`` degrades a compacted id to the nearest kept
        version instead of raising — see :meth:`resolve_version`.
        """
        return self._record_at(self.resolve_version(version, nearest=nearest))

    def vector(
        self,
        node: Node,
        version: int | None = None,
        *,
        nearest: bool = False,
    ) -> np.ndarray:
        """Embedding of ``node`` at ``version`` (read-only view)."""
        return self.version(version, nearest=nearest).vector(node)

    def _record_at(self, index: int) -> VersionRecord:
        """The live record for a resolved id, paging in cold versions."""
        record = self._records[index]
        if record is not None:
            return record
        return self._load_cold(index)

    def _load_cold(self, index: int) -> VersionRecord:
        """Page one spilled version through the LRU page cache."""
        cached = self._paged.get(index)
        if cached is not None:
            self._paged.move_to_end(index)
            return cached
        if self._cold is None or index not in self._spilled:
            raise LookupError(
                f"version {index} is neither resident nor spilled "
                "(store state is corrupt)"
            )  # pragma: no cover - internal invariant
        record = self._cold.load(index)
        self._paged[index] = record
        if len(self._paged) > self.page_cache:
            self._paged.popitem(last=False)
        return record

    def __iter__(self):
        """Iterate live versions in id order (tombstones are skipped).

        Cold versions page in on the fly; iterating a large tiered
        store streams through the page cache rather than re-residenting
        the history.
        """
        for index in range(len(self._records)):
            if index not in self._tombstones:
                yield self._record_at(index)

    # ------------------------------------------------------------------
    # introspection / pickling
    # ------------------------------------------------------------------
    def storage_info(self) -> dict:
        """Tier accounting: version counts and byte footprints.

        Returns a dict with ``versions`` (published ids, including
        tombstones), ``live``, ``hot`` (RAM-resident records), ``cold``
        (spilled), ``tombstoned``, ``pinned``, ``resident_bytes`` (hot
        matrices — the guaranteed RAM the store itself holds),
        ``paged_bytes`` (mmap-backed page-cache matrices, reclaimable by
        the kernel), and ``cold_bytes`` (spill files on disk).
        """
        hot = [r for r in self._records if r is not None]
        return {
            "versions": len(self._records),
            "live": len(self._records) - len(self._tombstones),
            "hot": len(hot),
            "cold": len(self._spilled),
            "tombstoned": len(self._tombstones),
            "pinned": len(self._pins),
            "resident_bytes": int(sum(r.matrix.nbytes for r in hot)),
            "paged_bytes": int(
                sum(r.matrix.nbytes for r in self._paged.values())
            ),
            "cold_bytes": (
                0
                if self._cold is None
                else self._cold.bytes_on_disk(sorted(self._spilled))
            ),
        }

    def __getstate__(self) -> dict:
        """Pickle without the page cache (memmaps must not ship).

        Pickling an ``np.memmap`` would materialise the cold matrix into
        the payload; a spawned worker (:mod:`repro.server.worker`)
        re-opens the shared spill files instead.
        """
        state = self.__dict__.copy()
        state["_paged"] = OrderedDict()
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._records:
            return "EmbeddingStore(versions=0)"
        head = self.latest
        tier = "" if self._cold is None else f", cold={len(self._spilled)}"
        return (
            f"EmbeddingStore(versions={len(self)}, "
            f"latest={head.num_nodes}x{head.dim}{tier})"
        )


# ----------------------------------------------------------------------
# persistence (single .npz per store)
# ----------------------------------------------------------------------
def save_store(store: EmbeddingStore, path: str | Path) -> None:
    """Serialise a store to one ``.npz`` archive.

    Layout: a JSON manifest (format version + per-version time step and
    metadata, plus the tombstoned ids of a compacted store) and, per
    *live* version ``i``, a node column ``v{i}_nodes`` and a float32
    matrix ``v{i}_matrix``. Cold versions page in while writing, so a
    tiered store round-trips exactly like an all-RAM one; tombstoned
    versions are skipped (compaction shrinks the archive).
    """
    versions = []
    arrays: dict[str, np.ndarray] = {}
    for record in store:
        versions.append(
            {
                "version": record.version,
                "time_step": record.time_step,
                "metadata": record.metadata,
            }
        )
        arrays[f"v{record.version}_nodes"] = encode_node_column(record.nodes)
        arrays[f"v{record.version}_matrix"] = np.asarray(record.matrix)
    manifest = {
        "format_version": STORE_FORMAT_VERSION,
        "versions": versions,
    }
    tombstones = getattr(store, "tombstones", ())
    if tombstones:
        manifest["tombstones"] = list(tombstones)
    arrays["manifest"] = np.array([json.dumps(manifest)], dtype=object)
    # Write through a handle so the archive lands at exactly ``path``
    # (np.savez silently appends .npz to suffix-less names otherwise,
    # leaving the caller's path dangling).
    with open(path, "wb") as handle:
        np.savez(handle, allow_pickle=True, **arrays)


def load_store(
    path: str | Path,
    *,
    store_dir: str | Path | None = None,
    hot_versions: int = 1,
) -> EmbeddingStore:
    """Restore a store saved by :func:`save_store`.

    Parameters
    ----------
    path:
        The ``.npz`` archive.
    store_dir:
        Re-open the store *tiered*: versions outside the hot window
        spill into this directory as they load, so a long history never
        fully re-residents. ``None`` (default) restores all-RAM.
    hot_versions:
        Hot-window size when ``store_dir`` is given (ignored otherwise).
    """
    archive = np.load(path, allow_pickle=True)
    manifest = json.loads(str(archive["manifest"][0]))
    fmt = int(manifest["format_version"])
    if fmt != STORE_FORMAT_VERSION:
        raise ValueError(
            f"store format {fmt} != supported {STORE_FORMAT_VERSION}"
        )
    store = EmbeddingStore(store_dir=store_dir, hot_versions=hot_versions)
    entries = {int(e["version"]): e for e in manifest["versions"]}
    tombstones = {int(v) for v in manifest.get("tombstones", [])}
    total = max(
        [max(entries, default=-1), max(tombstones, default=-1)],
    ) + 1
    for v in range(total):
        if v in tombstones:
            store._append_tombstone()
            continue
        entry = entries.get(v)
        if entry is None:
            raise ValueError(
                f"store archive is missing version {v} "
                "(neither published nor tombstoned)"
            )
        nodes = decode_node_column(archive[f"v{v}_nodes"])
        matrix = archive[f"v{v}_matrix"]
        store.publish(
            (nodes, matrix),
            time_step=int(entry["time_step"]),
            metadata=entry.get("metadata") or {},
        )
    return store
