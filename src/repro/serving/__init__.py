"""Embedding-serving subsystem: versioned store, kNN indexes, service facade.

The training side (:mod:`repro.core`, :mod:`repro.streaming`) produces a
fresh Z^t per snapshot or flush; this package is the consumption side:

* :class:`~repro.serving.store.EmbeddingStore` — append-only versioned
  snapshots that ``GloDyNE(publish_to=...)`` /
  ``StreamingGloDyNE(publish_to=...)`` publish into;
* :class:`~repro.serving.index.BruteForceIndex` /
  :class:`~repro.serving.index.LSHIndex` /
  :class:`~repro.serving.index.IVFIndex` — exact and approximate cosine
  kNN with incremental refresh (only moved rows re-hash);
* :class:`~repro.serving.service.EmbeddingService` — cached kNN queries,
  link scoring, and time-travel reads;
* :func:`~repro.serving.shards.split_store` — per-shard store views
  (partition cells ≙ shards) behind the multi-process serving tier
  (:mod:`repro.server.sharding`);
* :mod:`~repro.serving.storage` — the tiered-store machinery: mmap
  cold-version spill (:class:`~repro.serving.storage.ColdVersionStorage`),
  the int8 candidate-scan codec, and
  :class:`~repro.serving.storage.CompactionPolicy` GC rules.
"""

from repro.serving.index import (
    BruteForceIndex,
    IVFIndex,
    LSHIndex,
    unit_rows,
)
from repro.serving.service import EmbeddingService
from repro.serving.shards import ShardAssignment, split_store, stable_shard
from repro.serving.storage import (
    ColdVersionStorage,
    CompactionPolicy,
    dequantize_int8,
    quantize_int8,
    quantized_scores,
)
from repro.serving.store import (
    EmbeddingStore,
    VersionRecord,
    load_store,
    save_store,
)

__all__ = [
    "BruteForceIndex",
    "ColdVersionStorage",
    "CompactionPolicy",
    "IVFIndex",
    "EmbeddingService",
    "EmbeddingStore",
    "LSHIndex",
    "ShardAssignment",
    "VersionRecord",
    "dequantize_int8",
    "load_store",
    "quantize_int8",
    "quantized_scores",
    "save_store",
    "split_store",
    "stable_shard",
    "unit_rows",
]
