"""Tiered version storage: mmap-backed cold spill, int8 codec, compaction.

The serving store (:mod:`repro.serving.store`) is append-only — every
GloDyNE flush publishes a full float32 Z^t — so its memory footprint
grows linearly with history: ~0.5 GB per version at 1M nodes x d=128.
This module supplies the three mechanisms that keep a long history
servable, all behind the unchanged :class:`~repro.serving.store.
EmbeddingStore` API:

* **Cold spill** (:class:`ColdVersionStorage`) — versions outside the
  hot window (head + pins) are written to disk as one raw ``.npy``
  matrix plus a JSON sidecar (node ids via the
  :mod:`repro.core.persistence` codec, so arbitrary str/int ids
  round-trip) and dropped from RAM. Reads page them back in through
  ``np.load(..., mmap_mode="r")`` — the kernel's page cache holds only
  the rows a query touches, and reclaims them under pressure.
* **Int8 quantization** (:func:`quantize_int8` / :func:`quantized_scores`)
  — a per-row symmetric scale codec (``scale = max|row| / 127``) the
  exact and IVF indexes use for their *candidate* scans. The scan
  kernel dequantizes chunks into a reusable float32 buffer and hands
  each chunk to BLAS gemv: numpy has no SIMD int8 dot, so this is the
  fastest int8-storage scan pure numpy offers, and unlike the exact
  path it owes no bit-exactness contract — top candidates are re-ranked
  through the shared einsum kernel, which restores exact final scores.
* **Compaction** (:class:`CompactionPolicy`) — a ``keep_head_n`` +
  ``keep_every_k`` GC rule. Dropped versions are tombstoned, not
  renumbered, so version ids stay stable; ``resolve_version`` degrades
  to the nearest kept version only when the caller passes an explicit
  ``nearest=True``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.persistence import decode_node_column, encode_node_column

__all__ = [
    "ColdVersionStorage",
    "CompactionPolicy",
    "dequantize_int8",
    "quantize_int8",
    "quantized_scores",
]

#: On-disk format of a spilled version (sidecar ``format`` field).
COLD_FORMAT_VERSION = 1

#: Rows per dequantize-and-gemv chunk in :func:`quantized_scores`.
#: Tuned on the recording host: large enough to amortise the gemv call,
#: small enough that the float32 staging buffer stays L2-resident
#: (1024 x 128 x 4 B = 512 KiB).
DEFAULT_SCAN_CHUNK = 1024


# ----------------------------------------------------------------------
# int8 per-row scale quantization
# ----------------------------------------------------------------------
def quantize_int8(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Quantize rows to int8 with a per-row symmetric scale.

    Each row is encoded as ``round(row / scale)`` with
    ``scale = max|row| / 127`` — the classic symmetric scheme: zero maps
    to zero exactly and the full int8 range is spent on the row's actual
    dynamic range. All-zero rows get scale 0 and decode back to zero.

    Parameters
    ----------
    matrix:
        Float matrix of shape ``(n, d)`` (any float dtype).

    Returns
    -------
    (codes, scales)
        ``int8`` codes of shape ``(n, d)`` and ``float32`` per-row
        scales of shape ``(n,)`` with
        ``matrix ≈ codes.astype(float32) * scales[:, None]``.
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    peak = np.max(np.abs(matrix), axis=1)
    scales = (peak / 127.0).astype(np.float32)
    safe = np.where(scales > 0.0, scales, np.float32(1.0))
    codes = np.rint(matrix / safe[:, None]).astype(np.int8)
    return codes, scales


def dequantize_int8(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Reconstruct the float32 matrix :func:`quantize_int8` encoded.

    Parameters
    ----------
    codes:
        ``int8`` codes of shape ``(n, d)``.
    scales:
        ``float32`` per-row scales of shape ``(n,)``.

    Returns
    -------
    np.ndarray
        Float32 reconstruction, max per-row error ``scale / 2``.
    """
    codes = np.asarray(codes, dtype=np.int8)
    scales = np.asarray(scales, dtype=np.float32)
    return codes.astype(np.float32) * scales[:, None]


def quantized_scores(
    codes: np.ndarray,
    scales: np.ndarray,
    query: np.ndarray,
    *,
    chunk: int = DEFAULT_SCAN_CHUNK,
) -> np.ndarray:
    """Approximate per-row dot products against an int8-coded matrix.

    The kernel dequantizes ``chunk`` rows at a time into one reusable
    float32 staging buffer (a SIMD int8→float32 cast) and reduces each
    chunk with BLAS gemv, then applies the per-row scales once at the
    end. Numpy's integer matmul has no vectorised kernel, so staging
    through float32 beats every direct int8 reduction — and beats the
    exact path's shape-independent einsum scan, which buys determinism
    the approximate candidate scan does not need (top candidates are
    re-ranked exactly afterwards).

    Parameters
    ----------
    codes:
        ``int8`` codes of shape ``(n, d)``.
    scales:
        ``float32`` per-row scales of shape ``(n,)``.
    query:
        Float query vector of shape ``(d,)``.
    chunk:
        Rows per staging chunk (:data:`DEFAULT_SCAN_CHUNK`).

    Returns
    -------
    np.ndarray
        Float32 approximate scores of shape ``(n,)`` —
        ``dequantize_int8(codes, scales) @ query`` without materialising
        the dequantized matrix.
    """
    codes = np.asarray(codes, dtype=np.int8)
    scales = np.asarray(scales, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32).ravel()
    n, d = codes.shape
    out = np.empty(n, dtype=np.float32)
    staging = np.empty((min(chunk, n) or 1, d), dtype=np.float32)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = staging[: stop - start]
        np.copyto(block, codes[start:stop], casting="unsafe")
        out[start:stop] = block @ query
    out *= scales
    return out


# ----------------------------------------------------------------------
# cold (on-disk, mmap-backed) version storage
# ----------------------------------------------------------------------
class ColdVersionStorage:
    """Directory of spilled store versions, one ``.npy`` + sidecar each.

    Version ``v`` lives in two files under ``directory``:
    ``v{v:06d}.npy`` (the raw float32 matrix, written by ``np.save`` so
    a later ``np.load(mmap_mode="r")`` maps it without copying) and
    ``v{v:06d}.json`` (format version, time step, metadata, and the
    node column encoded with the :mod:`repro.core.persistence` codec).
    The class is a dumb file manager — hot/cold policy lives in
    :class:`~repro.serving.store.EmbeddingStore`.

    Parameters
    ----------
    directory:
        Spill directory; created (with parents) if missing.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def matrix_path(self, version: int) -> Path:
        """Path of version ``version``'s raw matrix file."""
        return self.directory / f"v{int(version):06d}.npy"

    def sidecar_path(self, version: int) -> Path:
        """Path of version ``version``'s JSON sidecar."""
        return self.directory / f"v{int(version):06d}.json"

    def __contains__(self, version: int) -> bool:
        return self.matrix_path(version).exists()

    def versions(self) -> list[int]:
        """Spilled version ids present on disk, ascending."""
        found = []
        for path in self.directory.glob("v*.npy"):
            stem = path.stem[1:]
            if stem.isdigit() and self.sidecar_path(int(stem)).exists():
                found.append(int(stem))
        return sorted(found)

    # ------------------------------------------------------------------
    def spill(self, record) -> None:
        """Write one :class:`~repro.serving.store.VersionRecord` to disk.

        Idempotent: versions are immutable, so an already-spilled id is
        left untouched (a pinned version that goes cold again does not
        rewrite its files). The sidecar is written after the matrix and
        via an atomic rename, so a crash mid-spill never leaves a
        sidecar pointing at a truncated matrix.
        """
        version = int(record.version)
        if version in self:
            return
        np.save(self.matrix_path(version), np.asarray(record.matrix))
        sidecar = {
            "format": COLD_FORMAT_VERSION,
            "version": version,
            "time_step": int(record.time_step),
            "metadata": record.metadata,
            "nodes": encode_node_column(record.nodes).tolist(),
        }
        tmp = self.sidecar_path(version).with_suffix(".json.tmp")
        tmp.write_text(json.dumps(sidecar))
        tmp.replace(self.sidecar_path(version))

    def load(self, version: int):
        """Page a spilled version back in as a ``VersionRecord``.

        The matrix comes back as a read-only ``np.memmap`` — only the
        rows a consumer touches occupy physical memory, and the round
        trip is bit-identical to the RAM-resident original (``np.save``
        writes the raw buffer). Node ids decode through the shared
        persistence codec.
        """
        from repro.serving.store import VersionRecord

        version = int(version)
        sidecar = json.loads(self.sidecar_path(version).read_text())
        fmt = int(sidecar.get("format", -1))
        if fmt != COLD_FORMAT_VERSION:
            raise ValueError(
                f"cold version format {fmt} != supported {COLD_FORMAT_VERSION}"
            )
        nodes = tuple(
            decode_node_column(np.asarray(sidecar["nodes"], dtype=object))
        )
        matrix = np.load(self.matrix_path(version), mmap_mode="r")
        return VersionRecord(
            version=version,
            time_step=int(sidecar["time_step"]),
            nodes=nodes,
            matrix=matrix,
            metadata=sidecar.get("metadata") or {},
            row_of={node: i for i, node in enumerate(nodes)},
        )

    def delete(self, version: int) -> None:
        """Remove a spilled version's files (missing files are a no-op)."""
        self.matrix_path(version).unlink(missing_ok=True)
        self.sidecar_path(version).unlink(missing_ok=True)

    def bytes_on_disk(self, versions: Iterable[int] | None = None) -> int:
        """Total file size of the given (default: all) spilled versions."""
        if versions is None:
            versions = self.versions()
        total = 0
        for version in versions:
            for path in (self.matrix_path(version), self.sidecar_path(version)):
                if path.exists():
                    total += path.stat().st_size
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColdVersionStorage({str(self.directory)!r})"


# ----------------------------------------------------------------------
# compaction / GC policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompactionPolicy:
    """Which historical versions a compaction pass keeps.

    A version survives when it is (any of): one of the newest
    ``keep_head_n`` live versions; a multiple of ``keep_every_k``
    (``version % keep_every_k == 0`` — a coarse time-travel spine);
    or pinned. Everything else is tombstoned by
    :meth:`EmbeddingStore.compact
    <repro.serving.store.EmbeddingStore.compact>`.

    Parameters
    ----------
    keep_head_n:
        Newest live versions to keep, ``>= 1`` (the head must survive —
        it is what the index serves).
    keep_every_k:
        Keep every k-th version id as a historical spine; ``None``
        keeps no spine (only the head window and pins survive).
    """

    keep_head_n: int = 1
    keep_every_k: int | None = None

    def __post_init__(self) -> None:
        if self.keep_head_n < 1:
            raise ValueError("keep_head_n must be >= 1 (the head must survive)")
        if self.keep_every_k is not None and self.keep_every_k < 1:
            raise ValueError("keep_every_k must be >= 1 (or None)")

    def survivors(
        self, live_versions: Sequence[int], pinned: Iterable[int] = ()
    ) -> set[int]:
        """The subset of ``live_versions`` this policy keeps.

        Parameters
        ----------
        live_versions:
            Ids of the currently live (non-tombstoned) versions.
        pinned:
            Ids that must survive regardless of the policy.

        Returns
        -------
        set of int
            Surviving version ids (always includes the newest
            ``keep_head_n`` of ``live_versions`` and every pin).
        """
        ordered = sorted(int(v) for v in live_versions)
        keep = set(ordered[-self.keep_head_n:]) if ordered else set()
        if self.keep_every_k is not None:
            keep.update(v for v in ordered if v % self.keep_every_k == 0)
        keep.update(int(v) for v in pinned if v in set(ordered))
        return keep
