"""DynLINE baseline (Du et al., IJCAI 2018): incremental LINE.

LINE's second-order objective is exactly SGNS with the edge list as the
pair corpus (each edge contributes a (u, v) and a (v, u) positive pair).
The dynamic extension updates, at each step, only the embeddings of the
*most affected* nodes — those incident to changed edges — plus new nodes,
by re-sampling only the edges touching them.

Like the original, the method has no mechanism for node deletions: the
paper reports n/a for DynLINE on AS733, which we reproduce by raising
:class:`repro.base.UnsupportedDynamicsError`.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.graph.diff import diff_snapshots
from repro.graph.static import Graph
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig, train_on_corpus
from repro.walks.corpus import PairCorpus

Node = Hashable


def _edge_corpus(
    snapshot: Graph, nodes: list[Node], restrict_to: set[Node] | None
) -> PairCorpus:
    """Pair corpus from edges (both directions), optionally restricted to
    edges incident to ``restrict_to``."""
    index_of = {node: i for i, node in enumerate(nodes)}
    centers: list[int] = []
    contexts: list[int] = []
    for u, v in snapshot.edges():
        if restrict_to is not None and u not in restrict_to and v not in restrict_to:
            continue
        ui, vi = index_of[u], index_of[v]
        centers.extend((ui, vi))
        contexts.extend((vi, ui))
    centers_arr = np.asarray(centers, dtype=np.int64)
    contexts_arr = np.asarray(contexts, dtype=np.int64)
    counts = np.zeros(len(nodes), dtype=np.int64)
    if centers_arr.size:
        np.add.at(counts, centers_arr, 1)
    return PairCorpus(centers=centers_arr, contexts=contexts_arr, counts=counts)


class DynLINE(DynamicEmbeddingMethod):
    """Incremental LINE(2nd) with most-affected-node updates."""

    name = "DynLINE"
    supports_node_deletion = False

    def __init__(
        self,
        dim: int = 128,
        negative: int = 5,
        epochs: int = 5,
        lr: float = 0.025,
        seed: int | None = None,
    ) -> None:
        self.dim = int(dim)
        self.negative = int(negative)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self.rng = np.random.default_rng(self._seed)
        self.model = SGNSModel(self.dim, rng=self.rng)
        self.previous: Graph | None = None
        self.time_step = 0

    def _train_config(self) -> TrainConfig:
        return TrainConfig(
            negative=self.negative, epochs=self.epochs, lr=self.lr
        )

    def update(self, snapshot: Graph) -> EmbeddingMap:
        self.check_deletions(self.previous, snapshot)
        nodes = list(snapshot.nodes())

        if self.previous is None:
            affected: set[Node] | None = None  # offline: every edge
        else:
            diff = diff_snapshots(self.previous, snapshot)
            affected = set(diff.changed_nodes) | set(diff.added_nodes)
            if not affected:
                # Quiet step: nothing to update, emit current state.
                self.previous = snapshot.copy()
                self.time_step += 1
                return self._emit(nodes)

        corpus = _edge_corpus(snapshot, nodes, affected)
        self.model.ensure_nodes(nodes)
        if corpus.num_pairs:
            row_of = self.model.vocab.indices(nodes)
            train_on_corpus(
                self.model, corpus, row_of, self.rng, config=self._train_config()
            )

        self.previous = snapshot.copy()
        self.time_step += 1
        return self._emit(nodes)

    def _emit(self, nodes: list[Node]) -> EmbeddingMap:
        self.model.ensure_nodes(nodes)
        matrix = self.model.embedding_matrix(nodes)
        return dict(zip(nodes, matrix))
