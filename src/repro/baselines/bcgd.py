"""BCGD baselines (Zhu et al., TKDE 2016) — BCGD-global and BCGD-local.

BCGD learns a temporal latent space by minimising the quadratic
reconstruction loss of each snapshot's adjacency with a temporal
regulariser tying consecutive embeddings together:

    min Σ_t ||A^t − Z^t Z^tᵀ||²_F  +  λ Σ_t ||Z^t − Z^{t-1}||²_F

* **BCGDg** (paper's algorithm 2) optimises all time steps *jointly*,
  cycling forward and backward over the timeline — effective, slow, and
  the reason it anchors the slow end of Table 4.
* **BCGDl** (algorithm 4) optimises only the current step, warm-started
  from (and regularised toward) the previous embeddings.

Both use dense adjacency and projected Adam: like the original, the latent
positions are constrained **nonnegative** (Zhu et al. optimise over Z >= 0
with block-coordinate steps), which is what keeps BCGD's cosine-based
graph-reconstruction scores modest — all embeddings share the positive
orthant.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.ml.optim import Adam

Node = Hashable


def _dense_adjacency(graph: Graph) -> tuple[list[Node], np.ndarray]:
    csr = CSRAdjacency.from_graph(graph)
    return csr.nodes, csr.adjacency_dense()


def _reconstruction_gradient(adjacency: np.ndarray, z: np.ndarray) -> np.ndarray:
    """∇_Z ||A − ZZᵀ||² = 4 (ZZᵀ − A) Z."""
    return 4.0 * ((z @ z.T) - adjacency) @ z


class _BCGDBase(DynamicEmbeddingMethod):
    """Shared state: per-node embedding memory across snapshots."""

    def __init__(
        self,
        dim: int = 128,
        lam: float = 0.1,
        iterations: int = 60,
        lr: float = 0.02,
        nonnegative: bool = True,
        seed: int | None = None,
    ) -> None:
        self.dim = int(dim)
        self.lam = float(lam)
        self.iterations = int(iterations)
        self.lr = float(lr)
        self.nonnegative = bool(nonnegative)
        self._seed = seed
        self.reset()

    def _project(self, z: np.ndarray) -> None:
        """Project onto the feasible set (Z >= 0 as in Zhu et al.)."""
        if self.nonnegative:
            np.maximum(z, 0.0, out=z)

    def reset(self) -> None:
        self.rng = np.random.default_rng(self._seed)
        self.memory: EmbeddingMap = {}
        self.time_step = 0

    def _initial_z(self, nodes: list[Node]) -> np.ndarray:
        """Warm-start rows from memory; new nodes get small random rows."""
        z = np.empty((len(nodes), self.dim), dtype=np.float64)
        for i, node in enumerate(nodes):
            if node in self.memory:
                z[i] = self.memory[node]
            else:
                z[i] = self.rng.normal(scale=0.1, size=self.dim)
        self._project(z)
        return z

    def _remember(self, nodes: list[Node], z: np.ndarray) -> None:
        for node, row in zip(nodes, z):
            self.memory[node] = row.copy()


class BCGDLocal(_BCGDBase):
    """BCGD-local: one warm-started optimisation per snapshot."""

    name = "BCGDl"

    def update(self, snapshot: Graph) -> EmbeddingMap:
        nodes, adjacency = _dense_adjacency(snapshot)
        z = self._initial_z(nodes)
        z_prev = z.copy()  # the warm start doubles as the temporal anchor
        known = np.array([node in self.memory for node in nodes], dtype=bool)

        optimizer = Adam(lr=self.lr)
        for _ in range(self.iterations):
            grad = _reconstruction_gradient(adjacency, z)
            if self.time_step > 0 and known.any():
                grad[known] += 2.0 * self.lam * (z[known] - z_prev[known])
            optimizer.step(z, grad)
            self._project(z)

        self._remember(nodes, z)
        self.time_step += 1
        return dict(zip(nodes, z.copy()))


class BCGDGlobal(_BCGDBase):
    """BCGD-global: joint cyclic optimisation over *all* snapshots so far.

    Keeps the full history and, at every update, re-optimises every
    timestep's embedding with the temporal chain coupling them — the
    highest-quality but slowest BCGD variant.
    """

    name = "BCGDg"

    def __init__(self, *args, cycles: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cycles = int(cycles)

    def reset(self) -> None:
        super().reset()
        self.history: list[tuple[list[Node], np.ndarray]] = []  # (nodes, A)
        self.z_history: list[np.ndarray] = []

    def update(self, snapshot: Graph) -> EmbeddingMap:
        nodes, adjacency = _dense_adjacency(snapshot)
        self.history.append((nodes, adjacency))
        self.z_history.append(self._initial_z(nodes))

        optimizer = Adam(lr=self.lr)
        steps_per_visit = max(1, self.iterations // max(1, len(self.history)))
        for _ in range(self.cycles):
            # Forward then backward over the timeline (block-cyclic).
            timeline = list(range(len(self.history)))
            for t in timeline + timeline[::-1]:
                self._optimize_step(t, optimizer, steps_per_visit)

        nodes_t, z_t = self.history[-1][0], self.z_history[-1]
        self._remember(nodes_t, z_t)
        self.time_step += 1
        return dict(zip(nodes_t, z_t.copy()))

    def _optimize_step(self, t: int, optimizer: Adam, steps: int) -> None:
        nodes_t, adjacency = self.history[t]
        z = self.z_history[t]
        index_t = {node: i for i, node in enumerate(nodes_t)}

        # Temporal couplings to both neighbours in time (common nodes only).
        couplings: list[tuple[np.ndarray, np.ndarray]] = []
        for other in (t - 1, t + 1):
            if 0 <= other < len(self.history):
                nodes_o = self.history[other][0]
                z_o = self.z_history[other]
                common = [n for n in nodes_t if n in index_t and n in set(nodes_o)]
                if not common:
                    continue
                rows_t = np.array([index_t[n] for n in common])
                index_o = {node: i for i, node in enumerate(nodes_o)}
                rows_o = np.array([index_o[n] for n in common])
                couplings.append((rows_t, z_o[rows_o]))

        for _ in range(steps):
            grad = _reconstruction_gradient(adjacency, z)
            for rows_t, anchor in couplings:
                grad[rows_t] += 2.0 * self.lam * (z[rows_t] - anchor)
            optimizer.step(z, grad)
            self._project(z)
