"""DynamicTriad baseline (Zhou et al., AAAI 2018), simplified.

DynamicTriad learns per-snapshot embeddings from three signals:

* *social homophily* — connected nodes should embed nearby (edge pairs);
* *triadic closure* — two nodes sharing a common neighbour are likely to
  connect, so open-triad endpoints are weak positives;
* *temporal smoothness* — embeddings should move little between steps.

We keep all three while replacing its ranking loss with SGNS-style
negative sampling over the union corpus (edges strongly weighted, sampled
open triads weakly). Each snapshot is optimised from a *fresh* random
initialisation (as the original does per time step), with the smoothness
term pulling common nodes toward their previous positions — reproducing
both the method's second-order strength (best-on-Elec behaviour) and its
characteristic run-to-run variance in the paper's Table 1.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.graph.static import Graph
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig, train_on_corpus
from repro.walks.corpus import PairCorpus

Node = Hashable


def _sample_open_triads(
    snapshot: Graph,
    nodes: list[Node],
    index_of: dict[Node, int],
    per_node: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Sample (u, v) endpoint pairs of open triads centred on each node."""
    pairs: list[tuple[int, int]] = []
    for w in nodes:
        neighbors = list(snapshot.neighbors(w))
        if len(neighbors) < 2:
            continue
        for _ in range(per_node):
            i, j = rng.integers(0, len(neighbors), size=2)
            if i == j:
                continue
            u, v = neighbors[int(i)], neighbors[int(j)]
            if not snapshot.has_edge(u, v):
                pairs.append((index_of[u], index_of[v]))
    return pairs


class DynTriad(DynamicEmbeddingMethod):
    """Triadic-closure DNE with per-snapshot retraining."""

    name = "DynTriad"
    supports_node_deletion = True

    def __init__(
        self,
        dim: int = 128,
        negative: int = 5,
        epochs: int = 5,
        lr: float = 0.025,
        triad_samples_per_node: int = 2,
        triad_weight: float = 0.3,
        smoothness: float = 0.2,
        seed: int | None = None,
    ) -> None:
        self.dim = int(dim)
        self.negative = int(negative)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.triad_samples_per_node = int(triad_samples_per_node)
        self.triad_weight = float(triad_weight)
        self.smoothness = float(smoothness)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self.rng = np.random.default_rng(self._seed)
        self.memory: EmbeddingMap = {}
        self.time_step = 0

    def _build_corpus(
        self, snapshot: Graph, nodes: list[Node]
    ) -> PairCorpus:
        index_of = {node: i for i, node in enumerate(nodes)}
        centers: list[int] = []
        contexts: list[int] = []
        # Homophily: every edge, both directions.
        for u, v in snapshot.edges():
            ui, vi = index_of[u], index_of[v]
            centers.extend((ui, vi))
            contexts.extend((vi, ui))
        # Triadic closure: subsampled open-triad endpoints (weak signal —
        # included with probability triad_weight per sampled pair).
        for ui, vi in _sample_open_triads(
            snapshot, nodes, index_of, self.triad_samples_per_node, self.rng
        ):
            if self.rng.random() < self.triad_weight:
                centers.extend((ui, vi))
                contexts.extend((vi, ui))
        centers_arr = np.asarray(centers, dtype=np.int64)
        contexts_arr = np.asarray(contexts, dtype=np.int64)
        counts = np.zeros(len(nodes), dtype=np.int64)
        if centers_arr.size:
            np.add.at(counts, centers_arr, 1)
        return PairCorpus(centers=centers_arr, contexts=contexts_arr, counts=counts)

    def update(self, snapshot: Graph) -> EmbeddingMap:
        nodes = list(snapshot.nodes())
        corpus = self._build_corpus(snapshot, nodes)

        # Fresh per-snapshot model (the source of DynTriad's variance).
        model = SGNSModel(self.dim, rng=self.rng)
        model.ensure_nodes(nodes)
        row_of = model.vocab.indices(nodes)
        config = TrainConfig(negative=self.negative, epochs=1, lr=self.lr)
        known = [node for node in nodes if node in self.memory]
        anchor = (
            np.stack([self.memory[node] for node in known]) if known else None
        )
        known_rows = model.vocab.indices(known) if known else None

        for _ in range(self.epochs):
            if corpus.num_pairs:
                train_on_corpus(model, corpus, row_of, self.rng, config=config)
            if anchor is not None and self.smoothness > 0:
                # Temporal smoothness: pull common nodes toward t-1.
                model.pull_rows_toward(known_rows, anchor, self.smoothness)

        matrix = model.embedding_matrix(nodes)
        result = dict(zip(nodes, matrix))
        self.memory = {node: vec.copy() for node, vec in result.items()}
        self.time_step += 1
        return result
