"""DynGEM baseline (Goyal et al., 2017): warm-started deep autoencoder.

DynGEM embeds each snapshot with an autoencoder over adjacency rows, where
the reconstruction loss up-weights observed edges by β (the SDNE trick — a
zero in the adjacency row may be a missing observation, so getting the
ones right matters more). At each time step the model is initialised from
the previous step's weights (widened when the node set grew, à la
Net2Net), so it converges in a few epochs.

Our network is ``n -> hidden -> d -> hidden -> n`` with ReLU hidden
activations and linear heads, trained by minibatch Adam in numpy.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.graph.static import Graph
from repro.ml.optim import Adam

Node = Hashable


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class _AutoEncoder:
    """Two-layer encoder/decoder MLP with β-weighted MSE reconstruction."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        embed_dim: int,
        rng: np.random.Generator,
    ) -> None:
        self.rng = rng
        self.hidden_dim = hidden_dim
        self.embed_dim = embed_dim
        self.w1 = self._glorot(input_dim, hidden_dim)
        self.b1 = np.zeros(hidden_dim)
        self.w2 = self._glorot(hidden_dim, embed_dim)
        self.b2 = np.zeros(embed_dim)
        self.w3 = self._glorot(embed_dim, hidden_dim)
        self.b3 = np.zeros(hidden_dim)
        self.w4 = self._glorot(hidden_dim, input_dim)
        self.b4 = np.zeros(input_dim)

    def _glorot(self, fan_in: int, fan_out: int) -> np.ndarray:
        scale = np.sqrt(6.0 / (fan_in + fan_out))
        return self.rng.uniform(-scale, scale, size=(fan_in, fan_out))

    @property
    def input_dim(self) -> int:
        return self.w1.shape[0]

    def widen(self, new_input_dim: int) -> None:
        """Net2Net-style widening when the node set grows.

        New input columns/rows get small random weights; existing weights
        are preserved, which is DynGEM's knowledge transfer.
        """
        old = self.input_dim
        if new_input_dim <= old:
            return
        grow = new_input_dim - old
        scale = np.sqrt(6.0 / (new_input_dim + self.hidden_dim))
        self.w1 = np.vstack(
            [self.w1, self.rng.uniform(-scale, scale, size=(grow, self.hidden_dim))]
        )
        self.w4 = np.hstack(
            [self.w4, self.rng.uniform(-scale, scale, size=(self.hidden_dim, grow))]
        )
        self.b4 = np.concatenate([self.b4, np.zeros(grow)])

    def encode(self, x: np.ndarray) -> np.ndarray:
        return _relu(x @ self.w1 + self.b1) @ self.w2 + self.b2

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, ...]:
        h1 = _relu(x @ self.w1 + self.b1)
        z = h1 @ self.w2 + self.b2
        h2 = _relu(z @ self.w3 + self.b3)
        out = h2 @ self.w4 + self.b4
        return h1, z, h2, out

    def train_batch(
        self, x: np.ndarray, beta: float, optimizer: Adam, l2: float
    ) -> float:
        """One Adam step on a batch of adjacency rows; returns the loss."""
        h1, z, h2, out = self.forward(x)
        weight = np.where(x > 0, beta, 1.0)
        diff = (out - x) * weight
        n = x.shape[0]
        loss = float((diff * diff).sum() / n)

        grad_out = 2.0 * diff * weight / n
        grad_w4 = h2.T @ grad_out + l2 * self.w4
        grad_b4 = grad_out.sum(axis=0)
        grad_h2 = grad_out @ self.w4.T
        grad_h2[h2 <= 0] = 0.0
        grad_w3 = z.T @ grad_h2 + l2 * self.w3
        grad_b3 = grad_h2.sum(axis=0)
        grad_z = grad_h2 @ self.w3.T
        grad_w2 = h1.T @ grad_z + l2 * self.w2
        grad_b2 = grad_z.sum(axis=0)
        grad_h1 = grad_z @ self.w2.T
        grad_h1[h1 <= 0] = 0.0
        grad_w1 = x.T @ grad_h1 + l2 * self.w1
        grad_b1 = grad_h1.sum(axis=0)

        for param, grad in (
            (self.w1, grad_w1),
            (self.b1, grad_b1),
            (self.w2, grad_w2),
            (self.b2, grad_b2),
            (self.w3, grad_w3),
            (self.b3, grad_b3),
            (self.w4, grad_w4),
            (self.b4, grad_b4),
        ):
            optimizer.step(param, grad)
        return loss


class DynGEM(DynamicEmbeddingMethod):
    """Warm-started autoencoder DNE (full retrain epochs on every step)."""

    name = "DynGEM"
    supports_node_deletion = True

    def __init__(
        self,
        dim: int = 128,
        hidden_dim: int = 256,
        beta: float = 5.0,
        epochs: int = 40,
        warm_epochs: int = 15,
        batch_size: int = 128,
        lr: float = 1e-3,
        l2: float = 1e-5,
        seed: int | None = None,
    ) -> None:
        self.dim = int(dim)
        self.hidden_dim = int(hidden_dim)
        self.beta = float(beta)
        self.epochs = int(epochs)
        self.warm_epochs = int(warm_epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.l2 = float(l2)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self.rng = np.random.default_rng(self._seed)
        self.model: _AutoEncoder | None = None
        # Global node ordering: the autoencoder's input dimension is the
        # number of nodes ever seen, so adjacency rows stay aligned with
        # model columns as the network grows.
        self.node_order: list[Node] = []
        self.node_index: dict[Node, int] = {}
        self.time_step = 0

    def _register_nodes(self, snapshot: Graph) -> None:
        for node in snapshot.nodes():
            if node not in self.node_index:
                self.node_index[node] = len(self.node_order)
                self.node_order.append(node)

    def _adjacency_rows(self, snapshot: Graph) -> tuple[list[Node], np.ndarray]:
        nodes = list(snapshot.nodes())
        dim = len(self.node_order)
        rows = np.zeros((len(nodes), dim), dtype=np.float64)
        for i, node in enumerate(nodes):
            for neighbor in snapshot.neighbors(node):
                rows[i, self.node_index[neighbor]] = snapshot.edge_weight(
                    node, neighbor
                )
        return nodes, rows

    def update(self, snapshot: Graph) -> EmbeddingMap:
        self._register_nodes(snapshot)
        nodes, rows = self._adjacency_rows(snapshot)
        input_dim = len(self.node_order)

        if self.model is None:
            self.model = _AutoEncoder(
                input_dim, self.hidden_dim, self.dim, self.rng
            )
            epochs = self.epochs
        else:
            self.model.widen(input_dim)
            epochs = self.warm_epochs  # knowledge transfer converges fast

        optimizer = Adam(lr=self.lr)
        n = rows.shape[0]
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = rows[order[start: start + self.batch_size]]
                self.model.train_batch(batch, self.beta, optimizer, self.l2)

        embeddings = self.model.encode(rows)
        self.time_step += 1
        return {node: embeddings[i].copy() for i, node in enumerate(nodes)}
