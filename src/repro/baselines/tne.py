"""tNE baseline (Singer et al., IJCAI 2019: tNodeEmbed), simplified.

tNE runs a *static* embedding per snapshot, aligns consecutive embedding
spaces with an orthogonal transformation (the static method is rotation-
invariant, so spaces must be registered before any temporal modelling),
and then combines the aligned per-step embeddings through a temporal
model.

Substitution note (see DESIGN.md §3): the original's temporal layer is an
LSTM trained per task; with no deep-learning stack available we use an
exponential temporal pooling over the aligned history, which preserves the
method's profile — near-static quality per step, heavy total cost (a full
DeepWalk per snapshot), smooth temporal trajectories. Like the original,
node deletions are unsupported (n/a on AS733 in the paper's tables).

Pipeline note: tNE is the worked example of extending the stage graph —
its per-step pipeline is the shared DeepWalk stages (select-all → walk →
train) plus one method-specific :class:`AlignPoolStage`. A new temporal
method is one new stage, not a reimplementation of the loop.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.core.glodyne import GloDyNEConfig, StepTrace
from repro.graph.static import Graph
from repro.parallel import DEFAULT_CHUNK_STARTS
from repro.pipeline.context import StepContext
from repro.pipeline.stages import (
    SelectionStage,
    StagePipeline,
    TrainStage,
    WalkCorpusStage,
)
from repro.sgns.model import SGNSModel

Node = Hashable


def orthogonal_procrustes_align(
    source: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Best orthogonal map R (in Frobenius norm) with source @ R ≈ target."""
    if source.shape != target.shape:
        raise ValueError("aligned matrices must share a shape")
    u, _, vt = np.linalg.svd(source.T @ target)
    return u @ vt


class AlignPoolStage:
    """tNE's method-specific stage: Procrustes alignment + temporal pooling.

    Registers the freshly trained static embedding onto the pooled
    history over the common nodes, then exponentially pools
    (``F^t = decay·F^{t-1} + (1-decay)·Z^t_aligned``). Writes the step's
    ``embeddings`` output and advances the engine's pooled state.
    """

    name = "align"

    def __init__(self, engine: "TNE") -> None:
        self.engine = engine

    def run(self, context: StepContext) -> None:
        """Align the step's embedding onto the pooled history and pool."""
        engine = self.engine
        nodes = list(context.snapshot.nodes())
        current = context.model.embedding_matrix(nodes)
        current_map = dict(zip(nodes, current))

        # Orthogonal registration onto the pooled history (common nodes).
        common = [node for node in nodes if node in engine.pooled]
        if common and len(common) >= engine.config.dim // 4 + 2:
            source = np.stack([current_map[node] for node in common])
            target = np.stack([engine.pooled[node] for node in common])
            rotation = orthogonal_procrustes_align(source, target)
            current = current @ rotation
            current_map = dict(zip(nodes, current))

        # Temporal pooling.
        result: EmbeddingMap = {}
        for node in nodes:
            aligned = current_map[node]
            if node in engine.pooled and engine.decay > 0:
                result[node] = (
                    engine.decay * engine.pooled[node]
                    + (1.0 - engine.decay) * aligned
                )
            else:
                result[node] = aligned.copy()

        engine.pooled = {node: vec.copy() for node, vec in result.items()}
        context.nodes = nodes
        context.embeddings = result


class TNE(DynamicEmbeddingMethod):
    """Static-per-snapshot embedding + alignment + temporal pooling."""

    name = "tNE"
    supports_node_deletion = False

    def __init__(
        self,
        dim: int = 128,
        num_walks: int = 10,
        walk_length: int = 80,
        window_size: int = 10,
        negative: int = 5,
        epochs: int = 5,
        decay: float = 0.6,
        seed: int | None = None,
        workers: int = 1,
        backend: str = "auto",
        chunk_starts: int = DEFAULT_CHUNK_STARTS,
        negative_prefetch: int | None = None,
        incremental_partition: bool = False,
    ) -> None:
        """``decay`` is the weight of history in the temporal pooling:
        ``F^t = decay * F^{t-1} + (1 - decay) * Z^t_aligned``.

        The default 0.6 is history-heavy, mirroring the original's
        LSTM-over-all-history design (and its published profile: strong
        smoothness, degraded per-step freshness — tNE trails static
        retraining on GR in the paper's Table 1).

        The engine knobs (``workers``, ``backend``, ``chunk_starts``,
        ``negative_prefetch``) thread straight into the shared DeepWalk
        stages; ``incremental_partition`` is accepted for CLI uniformity
        but inert — tNE never partitions.
        """
        if not (0.0 <= decay < 1.0):
            raise ValueError("decay must lie in [0, 1)")
        self.config = GloDyNEConfig(
            dim=dim,
            num_walks=num_walks,
            walk_length=walk_length,
            window_size=window_size,
            negative=negative,
            epochs=epochs,
            workers=workers,
            backend=backend,
            chunk_starts=chunk_starts,
            negative_prefetch=negative_prefetch,
        )
        self.decay = float(decay)
        self._seed = seed
        # The shared DeepWalk stages plus tNE's one custom stage — the
        # whole method as a stage configuration.
        self._pipeline = StagePipeline([
            SelectionStage(all_nodes=True),
            WalkCorpusStage(fused=False),
            TrainStage(),
            AlignPoolStage(self),
        ])
        self.reset()

    def reset(self) -> None:
        """Drop pooled history and restart from the construction seed."""
        self.rng = np.random.default_rng(self._seed)
        self.previous: Graph | None = None
        self.pooled: EmbeddingMap = {}
        self.time_step = 0
        self.last_trace: StepTrace | None = None

    def update(self, snapshot: Graph) -> EmbeddingMap:
        """Embed the next snapshot: fresh DeepWalk, align, pool."""
        self.check_deletions(self.previous, snapshot)

        # Static embedding of this snapshot from scratch; alignment and
        # pooling run as the pipeline's last stage.
        context = StepContext(
            config=self.config,
            rng=self.rng,
            model=SGNSModel(self.config.dim, rng=self.rng),
            snapshot=snapshot,
            time_step=self.time_step,
        )
        self._pipeline.run(context)
        self.last_trace = context.trace
        self.previous = snapshot.copy()
        self.time_step += 1
        return context.embeddings
