"""tNE baseline (Singer et al., IJCAI 2019: tNodeEmbed), simplified.

tNE runs a *static* embedding per snapshot, aligns consecutive embedding
spaces with an orthogonal transformation (the static method is rotation-
invariant, so spaces must be registered before any temporal modelling),
and then combines the aligned per-step embeddings through a temporal
model.

Substitution note (see DESIGN.md §3): the original's temporal layer is an
LSTM trained per task; with no deep-learning stack available we use an
exponential temporal pooling over the aligned history, which preserves the
method's profile — near-static quality per step, heavy total cost (a full
DeepWalk per snapshot), smooth temporal trajectories. Like the original,
node deletions are unsupported (n/a on AS733 in the paper's tables).
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.core.glodyne import GloDyNEConfig
from repro.core.variants import _deepwalk_round
from repro.graph.static import Graph
from repro.sgns.model import SGNSModel

Node = Hashable


def orthogonal_procrustes_align(
    source: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Best orthogonal map R (in Frobenius norm) with source @ R ≈ target."""
    if source.shape != target.shape:
        raise ValueError("aligned matrices must share a shape")
    u, _, vt = np.linalg.svd(source.T @ target)
    return u @ vt


class TNE(DynamicEmbeddingMethod):
    """Static-per-snapshot embedding + alignment + temporal pooling."""

    name = "tNE"
    supports_node_deletion = False

    def __init__(
        self,
        dim: int = 128,
        num_walks: int = 10,
        walk_length: int = 80,
        window_size: int = 10,
        negative: int = 5,
        epochs: int = 5,
        decay: float = 0.6,
        seed: int | None = None,
        workers: int = 1,
        backend: str = "auto",
    ) -> None:
        """``decay`` is the weight of history in the temporal pooling:
        ``F^t = decay * F^{t-1} + (1 - decay) * Z^t_aligned``.

        The default 0.6 is history-heavy, mirroring the original's
        LSTM-over-all-history design (and its published profile: strong
        smoothness, degraded per-step freshness — tNE trails static
        retraining on GR in the paper's Table 1)."""
        if not (0.0 <= decay < 1.0):
            raise ValueError("decay must lie in [0, 1)")
        self.config = GloDyNEConfig(
            dim=dim,
            num_walks=num_walks,
            walk_length=walk_length,
            window_size=window_size,
            negative=negative,
            epochs=epochs,
            workers=workers,
            backend=backend,
        )
        self.decay = float(decay)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self.rng = np.random.default_rng(self._seed)
        self.previous: Graph | None = None
        self.pooled: EmbeddingMap = {}
        self.time_step = 0

    def update(self, snapshot: Graph) -> EmbeddingMap:
        self.check_deletions(self.previous, snapshot)
        nodes = list(snapshot.nodes())

        # Static embedding of this snapshot from scratch.
        model = SGNSModel(self.config.dim, rng=self.rng)
        _deepwalk_round(model, snapshot, self.config, self.rng)
        current = model.embedding_matrix(nodes)
        current_map = dict(zip(nodes, current))

        # Orthogonal registration onto the pooled history (common nodes).
        common = [node for node in nodes if node in self.pooled]
        if common and len(common) >= self.config.dim // 4 + 2:
            source = np.stack([current_map[node] for node in common])
            target = np.stack([self.pooled[node] for node in common])
            rotation = orthogonal_procrustes_align(source, target)
            current = current @ rotation
            current_map = dict(zip(nodes, current))

        # Temporal pooling.
        result: EmbeddingMap = {}
        for node in nodes:
            aligned = current_map[node]
            if node in self.pooled and self.decay > 0:
                result[node] = (
                    self.decay * self.pooled[node] + (1.0 - self.decay) * aligned
                )
            else:
                result[node] = aligned.copy()

        self.pooled = {node: vec.copy() for node, vec in result.items()}
        self.previous = snapshot.copy()
        self.time_step += 1
        return result
