"""Comparison DNE baselines (Section 5.1.2 of the paper)."""

from repro.baselines.bcgd import BCGDGlobal, BCGDLocal
from repro.baselines.dyngem import DynGEM
from repro.baselines.dynline import DynLINE
from repro.baselines.dyntriad import DynTriad
from repro.baselines.tne import TNE, orthogonal_procrustes_align

__all__ = [
    "BCGDGlobal",
    "BCGDLocal",
    "DynGEM",
    "DynLINE",
    "DynTriad",
    "TNE",
    "orthogonal_procrustes_align",
]
