"""Common interface for every dynamic-network-embedding method.

All methods in this repository — GloDyNE, its ablation variants, and the
six comparison baselines — implement the same streaming contract
(Definition 4): consume snapshots one at a time and emit the latest
embeddings ``Z^t`` for the *current* node set after each snapshot.
"""

from __future__ import annotations

import abc
from typing import Hashable

import numpy as np

from repro.graph.dynamic import DynamicNetwork
from repro.graph.static import Graph

Node = Hashable
EmbeddingMap = dict[Node, np.ndarray]


class DynamicEmbeddingMethod(abc.ABC):
    """Streaming DNE interface: ``reset`` then ``update`` per snapshot.

    Subclasses set ``name`` (used in benchmark tables) and, when they
    cannot process node deletions (DynLINE and tNE in the paper report
    ``n/a`` on AS733 for this reason), ``supports_node_deletion = False``.
    """

    name: str = "method"
    supports_node_deletion: bool = True

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state so the instance can embed a fresh network."""

    @abc.abstractmethod
    def update(self, snapshot: Graph) -> EmbeddingMap:
        """Consume the next snapshot; return embeddings for its nodes."""

    def fit(self, network: DynamicNetwork) -> list[EmbeddingMap]:
        """Embed every snapshot in order; returns one map per snapshot."""
        self.reset()
        return [self.update(snapshot) for snapshot in network]

    def check_deletions(self, previous: Graph | None, snapshot: Graph) -> None:
        """Raise when a method that cannot handle deletions receives one."""
        if self.supports_node_deletion or previous is None:
            return
        removed = previous.node_set() - snapshot.node_set()
        if removed:
            raise UnsupportedDynamicsError(
                f"{self.name} cannot handle node deletions "
                f"({len(removed)} nodes removed)"
            )


class UnsupportedDynamicsError(RuntimeError):
    """A method received dynamics it cannot process (paper's n/a cells)."""


def embeddings_as_matrix(
    embeddings: EmbeddingMap, nodes: list[Node] | None = None
) -> tuple[list[Node], np.ndarray]:
    """Stack an embedding map into ``(nodes, matrix)`` with aligned rows."""
    if nodes is None:
        nodes = list(embeddings)
    matrix = np.stack([embeddings[node] for node in nodes])
    return nodes, matrix
