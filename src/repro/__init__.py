"""GloDyNE reproduction: global-topology-preserving dynamic network embedding.

A complete, self-contained implementation of GloDyNE (Hou et al., IEEE
TKDE 2020 / ICDE 2022 extended abstract) and its full evaluation stack:
the multilevel graph partitioner, pure-numpy SGNS, six comparison
baselines, three downstream tasks, and simulated analogues of the paper's
six dynamic-network datasets.

Quickstart::

    from repro import GloDyNE, load_dataset
    from repro.tasks import graph_reconstruction_over_time

    network = load_dataset("elec-sim", seed=0)
    model = GloDyNE(dim=64, alpha=0.1, seed=0)
    embeddings = model.fit(network)            # one map per snapshot
    scores = graph_reconstruction_over_time(embeddings, network, ks=[10])
"""

from repro.base import (
    DynamicEmbeddingMethod,
    EmbeddingMap,
    UnsupportedDynamicsError,
    embeddings_as_matrix,
)
from repro.baselines import BCGDGlobal, BCGDLocal, DynGEM, DynLINE, DynTriad, TNE
from repro.core import (
    GloDyNE,
    GloDyNEConfig,
    SGNSIncrement,
    SGNSRetrain,
    SGNSStatic,
)
from repro.datasets import list_datasets, load_dataset
from repro.graph import DynamicNetwork, EdgeEvent, Graph
from repro.partition import PartitionResult, partition_graph
from repro.serving import (
    BruteForceIndex,
    IVFIndex,
    EmbeddingService,
    EmbeddingStore,
    LSHIndex,
)
from repro.streaming import FlushPolicy, FlushResult, StreamingGloDyNE

__version__ = "1.0.0"

__all__ = [
    "BCGDGlobal",
    "BCGDLocal",
    "BruteForceIndex",
    "IVFIndex",
    "DynGEM",
    "DynLINE",
    "DynTriad",
    "DynamicEmbeddingMethod",
    "DynamicNetwork",
    "EdgeEvent",
    "EmbeddingMap",
    "EmbeddingService",
    "EmbeddingStore",
    "FlushPolicy",
    "FlushResult",
    "LSHIndex",
    "GloDyNE",
    "GloDyNEConfig",
    "Graph",
    "PartitionResult",
    "StreamingGloDyNE",
    "SGNSIncrement",
    "SGNSRetrain",
    "SGNSStatic",
    "TNE",
    "UnsupportedDynamicsError",
    "embeddings_as_matrix",
    "list_datasets",
    "load_dataset",
    "partition_graph",
]
