"""Serving observability: request counters, batch histogram, latency tails.

The daemon's ``/stats`` endpoint is backed by one :class:`ServerStats`
instance. Everything here is O(1) per request on the hot path — the only
non-trivial work (percentile sort over the latency ring) happens when a
snapshot is actually requested.
"""

from __future__ import annotations

import math
import time
from collections import Counter, deque


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` by nearest-rank (``q`` in [0, 1]).

    Nearest-rank proper: the smallest sample such that at least
    ``q * n`` of the observations are <= it, i.e. the 1-based rank
    ``ceil(q * n)`` (clipped to the sample range, so ``q=0`` returns the
    minimum and ``q=1`` the maximum). Small windows behave sanely: one
    sample is every percentile of itself, and a 2-sample median is the
    *lower* sample for any window size — the previous
    ``round(q * (n - 1))`` indexing mixed an interpolation-scale index
    with banker's rounding, so the 2-sample median (``round(0.5) = 0``)
    and the 4-sample median (``round(1.5) = 2``, strictly above the
    median) disagreed about which side of the median to report.

    Parameters
    ----------
    samples:
        Non-empty list of observations (any order; not mutated).
    q:
        Quantile in ``[0, 1]``; 0.5 is the median, 0.99 the p99.

    Returns
    -------
    float
        The nearest-rank sample value.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class ServerStats:
    """Counters behind ``/stats``: QPS, batch sizes, latency percentiles.

    Parameters
    ----------
    latency_window:
        Number of most-recent request latencies retained for the
        p50/p99 estimate (a bounded ring, not a full history).

    Notes
    -----
    One instance is shared by the daemon's connection handlers, the
    micro-batcher (which records dispatch sizes), and the hot-reload
    path (which records index swaps). The daemon is single-loop, so no
    locking is needed.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self._latency_window = int(latency_window)
        self.reset()

    def reset(self) -> None:
        """Zero every counter in place (references stay valid).

        Holders keep their reference to this instance — the batcher and
        connection handlers share it — so warm-up traffic can be
        discarded before a measured window without rewiring anything
        (``bench_server_qps`` does exactly this).
        """
        self.started_monotonic = time.monotonic()
        self.started_unix = time.time()
        self.requests = 0
        self.responses_by_status: Counter[int] = Counter()
        self.knn_queries = 0
        self.batch_dispatches = 0
        self.batch_sizes: Counter[int] = Counter()
        self.index_swaps = 0
        self.rows_rehashed = 0
        self.protocol_errors = 0
        self.idle_timeouts = 0
        self.reload_errors = 0
        self._latencies: deque[float] = deque(maxlen=self._latency_window)

    # ------------------------------------------------------------------
    # recording (hot path)
    # ------------------------------------------------------------------
    def record_request(self, status: int, seconds: float) -> None:
        """Count one answered request and its wall-clock latency."""
        self.requests += 1
        self.responses_by_status[int(status)] += 1
        self._latencies.append(float(seconds))

    def record_knn(self, count: int = 1) -> None:
        """Count ``count`` kNN lookups (batched lookups count each query)."""
        self.knn_queries += int(count)

    def record_batch(self, size: int) -> None:
        """Count one micro-batch dispatch of ``size`` coalesced queries."""
        self.batch_dispatches += 1
        self.batch_sizes[int(size)] += 1

    def record_swap(self, rows_rehashed: int) -> None:
        """Count one hot index swap and the rows its refresh re-hashed."""
        self.index_swaps += 1
        self.rows_rehashed += int(rows_rehashed)

    def record_protocol_error(self) -> None:
        """Count one malformed-framing connection (answered 4xx, closed)."""
        self.protocol_errors += 1

    def record_idle_timeout(self) -> None:
        """Count one idle keep-alive connection closed with 408."""
        self.idle_timeouts += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/stats`` payload: a plain JSON-serialisable dict.

        Returns
        -------
        dict
            ``uptime_seconds``, ``requests``, ``qps`` (lifetime mean),
            per-status response counts, kNN/batch counters with the
            batch-size histogram and mean, hot-swap counters, and
            ``latency_ms`` aggregates (p50/p99/mean over the retained
            window).
        """
        uptime = max(time.monotonic() - self.started_monotonic, 1e-9)
        samples = list(self._latencies)
        latency_ms = {
            "window": len(samples),
            "p50": percentile(samples, 0.50) * 1e3 if samples else None,
            "p99": percentile(samples, 0.99) * 1e3 if samples else None,
            "mean": (sum(samples) / len(samples)) * 1e3 if samples else None,
        }
        coalesced = sum(size * n for size, n in self.batch_sizes.items())
        return {
            "started_unix": self.started_unix,
            "uptime_seconds": uptime,
            "requests": self.requests,
            "qps": self.requests / uptime,
            "responses_by_status": {
                str(status): count
                for status, count in sorted(self.responses_by_status.items())
            },
            "protocol_errors": self.protocol_errors,
            "idle_timeouts": self.idle_timeouts,
            "knn": {
                "queries": self.knn_queries,
                "batch_dispatches": self.batch_dispatches,
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_sizes.items())
                },
                "mean_batch_size": (
                    coalesced / self.batch_dispatches
                    if self.batch_dispatches
                    else None
                ),
            },
            "hot_reload": {
                "index_swaps": self.index_swaps,
                "rows_rehashed": self.rows_rehashed,
                "reload_errors": self.reload_errors,
            },
            "latency_ms": latency_ms,
        }
