"""Request micro-batching: coalesce concurrent kNN lookups into one dispatch.

The daemon's ``/knn`` hot path is dominated by per-query overhead —
head-follow refresh checks, version resolution, cache bookkeeping, and
small-numpy call dispatch — not by the index probe itself
(``benchmarks/bench_serving_qps.py``). When requests arrive
concurrently, that overhead is the same whether one query or sixty-four
ride the dispatch, so the batcher collects every lookup that arrives in
the same event-loop tick (optionally holding lone requests for a
configurable window) or until a batch fills (default 64), then answers
the whole batch through a single
:meth:`EmbeddingService.query_knn_batch
<repro.serving.service.EmbeddingService.query_knn_batch>` call — which
itself issues one ``query_many`` against the index.

Determinism contract: with the LSH backend a batched answer is
bit-identical to the unbatched :meth:`query_knn
<repro.serving.service.EmbeddingService.query_knn>` answer
(``tests/test_server_batcher.py`` pins this), so a client cannot tell
whether its request was coalesced.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Hashable

Node = Hashable

#: Default coalescing window, seconds. 0 is *tick coalescing*: a lone
#: request dispatches on the next event-loop iteration, so everything
#: that arrived in the same loop tick (a concurrent burst) rides one
#: dispatch with no added latency. A positive window additionally holds
#: lone requests back to catch stragglers — worth it only when the
#: per-request service cost exceeds the window; otherwise it trades
#: latency for nothing (``benchmarks/bench_server_qps.py`` shows a fixed
#: 2 ms window *halving* closed-loop throughput).
DEFAULT_WINDOW = 0.0
#: Default maximum queries per dispatch.
DEFAULT_MAX_BATCH = 64


@dataclass
class _Pending:
    """One enqueued lookup: its arguments and the future its caller awaits."""

    node: Node
    k: int
    exclude_self: bool
    future: asyncio.Future = field(repr=False)


class MicroBatcher:
    """Coalesce concurrent kNN lookups against one :class:`EmbeddingService`.

    Parameters
    ----------
    service:
        The :class:`repro.serving.EmbeddingService` the batches dispatch
        to (its store head is what batched queries answer from).
    max_batch:
        Dispatch immediately once this many lookups are pending
        (``>= 1``; 1 disables coalescing — every request dispatches on
        its own, the daemon's ``--no-batching`` mode).
    window:
        Seconds a lone request waits for company before dispatching
        (``>= 0``; the default 0 dispatches on the next event-loop
        tick, which already coalesces concurrent bursts — see
        :data:`DEFAULT_WINDOW` for when a positive window pays).
    stats:
        Optional :class:`repro.server.stats.ServerStats`; when given,
        every dispatch records its coalesced size.
    before_dispatch:
        Optional zero-argument callable invoked synchronously right
        before each dispatch — the daemon's hot-reload hook (swap the
        index to the store head so the whole batch answers at one
        version). A *failing* hook does not fail the batch: the error
        is counted (``stats.reload_errors``), reported through
        ``on_reload_error``, and the batch answers at the last indexed
        version instead — the same non-fatal contract as the daemon's
        background reload poller. Only when nothing has ever been
        indexed is there no stale version to fall back to, and the
        batch fails with the hook's error.
    on_reload_error:
        Optional one-argument callable receiving the exception each
        time ``before_dispatch`` fails (the daemon records it as
        ``last_reload_error`` for ``/healthz``).

    Notes
    -----
    The batcher runs entirely on the event loop: ``_dispatch`` is
    synchronous, so a batch's refresh + query + result fan-out is atomic
    with respect to other coroutines — in-flight requests can never
    observe a half-swapped index.
    """

    def __init__(
        self,
        service,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        window: float = DEFAULT_WINDOW,
        stats=None,
        before_dispatch: Callable[[], None] | None = None,
        on_reload_error: Callable[[Exception], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window < 0:
            raise ValueError("window must be >= 0 seconds")
        self.service = service
        self.max_batch = int(max_batch)
        self.window = float(window)
        self.stats = stats
        self.before_dispatch = before_dispatch
        self.on_reload_error = on_reload_error
        self._pending: list[_Pending] = []
        self._timer: asyncio.TimerHandle | None = None

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Lookups currently waiting for the next dispatch."""
        return len(self._pending)

    async def query(
        self, node: Node, k: int = 10, *, exclude_self: bool = True
    ) -> list[tuple[Node, float]]:
        """Enqueue one lookup and await its batched answer.

        Parameters
        ----------
        node:
            Query node id (must exist at the store head — ``KeyError``
            otherwise, raised on this caller only).
        k:
            Neighbours to return, ``>= 1``.
        exclude_self:
            Drop the query node from its own result.

        Returns
        -------
        list of (node, float)
            Exactly what ``service.query_knn(node, k)`` returns.
        """
        result, _ = await self._submit(node, k, exclude_self)
        return result

    async def query_with_version(
        self, node: Node, k: int = 10, *, exclude_self: bool = True
    ) -> tuple[list[tuple[Node, float]], int | None]:
        """Like :meth:`query`, plus the store version the answer used.

        The version is captured *inside* the dispatch, synchronously
        with the index call — reading ``service.indexed_version`` after
        the await would race a hot swap landing between the dispatch and
        this coroutine resuming, mislabelling the results' provenance.
        """
        return await self._submit(node, k, exclude_self)

    async def _submit(
        self, node: Node, k: int, exclude_self: bool
    ) -> tuple[list[tuple[Node, float]], int | None]:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append(_Pending(node, int(k), bool(exclude_self), future))
        if len(self._pending) >= self.max_batch:
            self._dispatch()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._dispatch)
        return await future

    def flush(self) -> None:
        """Dispatch whatever is pending now (daemon shutdown drain)."""
        if self._pending:
            self._dispatch()

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Answer every pending lookup; runs synchronously on the loop."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        # One histogram entry per dispatcher wake-up, before any group
        # work: the batch-size telemetry measures how many requests each
        # coalescing window actually gathered (mixed-k batches still
        # count once; a fallback still coalesced the wake-up).
        if self.stats is not None:
            self.stats.record_batch(len(batch))
            self.stats.record_knn(len(batch))
        degraded = False
        if self.before_dispatch is not None:
            try:
                self.before_dispatch()
            except Exception as error:
                # A failing hot reload (malformed head publish) must not
                # fail the batch: the last indexed version can still
                # serve — the same non-fatal contract as the daemon's
                # background reload poller. Count it, surface it, and
                # answer at the stale head.
                if self.stats is not None:
                    self.stats.reload_errors += 1
                if self.on_reload_error is not None:
                    self.on_reload_error(error)
                if getattr(self.service, "indexed_version", None) is None:
                    # Nothing ever indexed: there is no stale version to
                    # degrade to, so the batch genuinely cannot answer.
                    self._fail(batch, error)
                    return
                degraded = True
        # One query_many per distinct (k, exclude_self): the service's
        # candidate-coverage target scales with k, so mixing k values in
        # one index call would change what smaller-k queries see.
        groups: dict[tuple[int, bool], list[_Pending]] = {}
        for pending in batch:
            groups.setdefault((pending.k, pending.exclude_self), []).append(
                pending
            )
        for (k, exclude_self), group in groups.items():
            try:
                results = self.service.query_knn_batch(
                    [pending.node for pending in group],
                    k,
                    exclude_self=exclude_self,
                    refresh=not degraded,
                )
            except Exception:
                # A batch fails as a unit (e.g. one unknown node aborts
                # the shared vector gather); fall back to per-request
                # queries so only the offending lookups error.
                self._settle_individually(group, degraded=degraded)
            else:
                # Captured synchronously with the index call — the
                # version these results were computed at, immune to a
                # hot swap racing the callers' wake-ups.
                version = getattr(self.service, "indexed_version", None)
                for pending, result in zip(group, results):
                    if not pending.future.done():
                        pending.future.set_result((result, version))

    def _settle_individually(
        self, group: list[_Pending], *, degraded: bool = False
    ) -> None:
        """Per-request fallback: isolate which lookups actually fail.

        In degraded mode (the reload hook failed) each lookup pins to
        the last indexed version — following the head per-request would
        just re-raise the reload failure for every caller.
        """
        version = (
            getattr(self.service, "indexed_version", None) if degraded else None
        )
        for pending in group:
            if pending.future.done():
                continue
            try:
                result = self.service.query_knn(
                    pending.node,
                    pending.k,
                    version=version,
                    exclude_self=pending.exclude_self,
                )
            except Exception as error:
                pending.future.set_exception(error)
            else:
                pending.future.set_result(
                    (result, getattr(self.service, "indexed_version", None))
                )

    @staticmethod
    def _fail(batch: list[_Pending], error: Exception) -> None:
        """Fail every not-yet-done future in ``batch`` with ``error``."""
        for pending in batch:
            if not pending.future.done():
                pending.future.set_exception(error)
