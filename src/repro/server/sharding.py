"""Scatter-gather shard router: one front door over N worker processes.

A single :class:`~repro.server.daemon.EmbeddingDaemon` tops out around
one core (``benchmarks/bench_server_qps.py``); this module is the
horizontal tier above it. :func:`repro.serving.shards.split_store`
splits a store into disjoint per-shard views, each served by its own
worker *process* (:mod:`repro.server.worker` — its own event loop,
service, micro-batcher), and a :class:`ShardRouter` fronts them:

* ``/g/<name>/knn`` **scatter-gathers**: the router looks the query
  node's vector up in its own copy of the parent store, ships the
  vector to every shard (``POST /knn`` with a JSON body — float32
  round-trips through JSON exactly), and merges the per-shard top-k
  into a global top-k with :func:`merge_topk`;
* ``/g/<name>/score`` / ``/g/<name>/embed`` **proxy** to the owning
  shard (cross-shard pairs fetch both vectors and score at the router
  with the same scorer the service uses);
* ``/healthz`` / ``/stats`` **aggregate** every worker's payload,
  per-shard and rolled up;
* ``/g/<name>/versions`` answers locally from the parent store (shard
  stores replicate the same version ids).

The merge is deterministic and, on the exact backend, **bit-identical**
to the unsharded single-process answer: exact-scan scores use a
shape-independent reduction (``index._cosine_scores``), shard matrices
keep ascending parent-row order, and :func:`merge_topk` orders
candidates by ``(-score, parent row)`` — the same tie-break as
``index._top_k``. ``tests/test_server_sharding.py`` pins this
property, ties included.

One dead worker degrades, it does not cascade: the affected query
routes answer ``503`` naming the shard, ``/healthz`` reports the shard
``unreachable``, and the router keeps serving everything else.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence
from urllib.parse import quote

import numpy as np

from repro.base import EmbeddingMap
from repro.serving.shards import ShardAssignment
from repro.serving.store import EmbeddingStore
from repro.server.daemon import DEFAULT_IDLE_TIMEOUT, BaseHTTPDaemon, HTTPError
from repro.server.http import Request
from repro.tasks.link_prediction import score_pairs

Node = Hashable

#: Per-exchange timeout for router → worker calls, seconds.
DEFAULT_SHARD_TIMEOUT = 10.0


@dataclass(frozen=True)
class ShardSpec:
    """Address of one shard worker: a name plus its HTTP endpoint."""

    name: str
    host: str
    port: int


class ShardUnavailable(Exception):
    """A worker could not be reached (dead process, timeout, refused).

    Parameters
    ----------
    spec:
        The unreachable shard.
    reason:
        Transport-level failure description.
    """

    def __init__(self, spec: ShardSpec, reason: str) -> None:
        super().__init__(f"shard {spec.name!r} unavailable: {reason}")
        self.spec = spec
        self.reason = reason


def merge_topk(
    shard_neighbors: Sequence[Sequence[tuple[Node, float]]],
    row_of: Mapping[Node, int],
    k: int,
    *,
    exclude: Sequence[Node] = (),
) -> list[tuple[Node, float]]:
    """Merge per-shard ranked ``(node, score)`` lists into a global top-k.

    Deterministic and bit-identical to the unsharded exact answer:
    candidates order by ``(-score, parent row)`` — exactly the
    descending-score / ascending-row tie-break of ``index._top_k`` —
    then ``exclude`` nodes are dropped and the list truncates to ``k``,
    mirroring ``EmbeddingService._materialise``. Shards are disjoint,
    so parent rows are unique and node ids never need comparing.

    Parameters
    ----------
    shard_neighbors:
        One ranked neighbor list per shard (any shard order).
    row_of:
        Node → parent-store row (``VersionRecord.row_of`` of the
        version the shards answered at).
    k:
        Neighbours to keep after exclusion.
    exclude:
        Node ids dropped from the merged ranking (the query node when
        the caller asked ``exclude_self``).

    Returns
    -------
    list of (node, float)
        Global best-first ``(node, score)`` pairs, at most ``k``.
    """
    candidates = [
        (-float(score), row_of[node], node)
        for neighbors in shard_neighbors
        for node, score in neighbors
    ]
    candidates.sort(key=lambda entry: (entry[0], entry[1]))
    merged: list[tuple[Node, float]] = []
    for neg_score, _row, node in candidates:
        if node in exclude:
            continue
        merged.append((node, -neg_score))
        if len(merged) == k:
            break
    return merged


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, object, bool]:
    """One worker HTTP response: ``(status, JSON payload, keep_alive)``."""
    raw = await reader.readuntil(b"\n")
    parts = raw.decode("ascii", "replace").split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed status line {raw!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = (await reader.readuntil(b"\n")).rstrip(b"\r\n")
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    return status, json.loads(body) if body else None, keep_alive


class _ShardClient:
    """Pooled keep-alive HTTP client for one worker endpoint.

    Workers run with ``idle_timeout=None`` (the router is a trusted
    client), so pooled connections stay valid between queries; a stale
    pooled connection (worker restarted) is retried once on a fresh
    socket before the shard is declared unavailable.
    """

    def __init__(self, spec: ShardSpec, timeout: float) -> None:
        self.spec = spec
        self.timeout = timeout
        self._pool: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(
        self, target: str, *, method: str = "GET", body: object | None = None
    ) -> tuple[int, object]:
        """One HTTP exchange; raises :class:`ShardUnavailable` on transport failure."""
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        head = [
            f"{method} {target} HTTP/1.1",
            f"Host: {self.spec.host}:{self.spec.port}",
            "Connection: keep-alive",
        ]
        if payload:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(payload)}")
        wire = ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + payload

        while True:
            fresh = False
            conn = self._acquire()
            if conn is None:
                fresh = True
                try:
                    conn = await asyncio.wait_for(
                        asyncio.open_connection(self.spec.host, self.spec.port),
                        self.timeout,
                    )
                except (OSError, asyncio.TimeoutError) as error:
                    raise ShardUnavailable(
                        self.spec, f"connect failed: {error or type(error).__name__}"
                    ) from None
            reader, writer = conn
            try:
                writer.write(wire)
                await writer.drain()
                status, parsed, keep_alive = await asyncio.wait_for(
                    _read_response(reader), self.timeout
                )
            except asyncio.TimeoutError:
                self._discard(writer)
                raise ShardUnavailable(
                    self.spec, f"no response within {self.timeout:g}s"
                ) from None
            except (OSError, ConnectionError, asyncio.IncompleteReadError, ValueError) as error:
                self._discard(writer)
                if fresh:
                    raise ShardUnavailable(
                        self.spec, f"exchange failed: {error or type(error).__name__}"
                    ) from None
                continue  # stale pooled connection — retry on a fresh one
            if keep_alive:
                self._pool.append((reader, writer))
            else:
                self._discard(writer)
            return status, parsed

    def _acquire(self):
        """A pooled live connection, or None."""
        while self._pool:
            reader, writer = self._pool.pop()
            if not reader.at_eof() and not writer.is_closing():
                return reader, writer
            self._discard(writer)
        return None

    @staticmethod
    def _discard(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def close(self) -> None:
        """Close every pooled connection."""
        while self._pool:
            _, writer = self._pool.pop()
            self._discard(writer)


@dataclass(frozen=True)
class RouterGraph:
    """Router-side view of one sharded graph.

    The router keeps the *parent* (unsharded) store: it resolves query
    nodes to vectors for the scatter, maps returned node ids back to
    parent rows for the merge, and answers ``/versions`` locally.
    """

    name: str
    store: EmbeddingStore
    assignment: ShardAssignment
    metric_check: tuple[str, ...] = field(default=("cosine", "dot"), repr=False)


class ShardRouter(BaseHTTPDaemon):
    """Front daemon scatter-gathering queries across shard workers.

    Parameters
    ----------
    graphs:
        ``{route name: (parent store, assignment)}`` — the same stores
        that were split with :func:`repro.serving.shards.split_store`
        and the assignments it returned.
    shards:
        One :class:`ShardSpec` per worker, in shard-id order;
        ``len(shards)`` must equal every assignment's ``num_shards``.
    shard_timeout:
        Seconds per router → worker exchange before the shard is
        declared unavailable (503 to the client).
    idle_timeout:
        Client-facing keep-alive idle timeout (the router front door
        keeps the public default; worker links are separate).
    latency_window:
        Request latencies retained for ``/stats`` percentiles.
    """

    def __init__(
        self,
        graphs: Mapping[str, tuple[EmbeddingStore, ShardAssignment]],
        shards: Sequence[ShardSpec],
        *,
        shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
        latency_window: int = 2048,
    ) -> None:
        if not graphs:
            raise ValueError("router needs at least one sharded graph")
        if not shards:
            raise ValueError("router needs at least one shard worker")
        super().__init__(idle_timeout=idle_timeout, latency_window=latency_window)
        self.graphs: dict[str, RouterGraph] = {}
        for name, (store, assignment) in graphs.items():
            if assignment.num_shards != len(shards):
                raise ValueError(
                    f"graph {name!r} was split into {assignment.num_shards} "
                    f"shards but {len(shards)} workers were given"
                )
            self.graphs[name] = RouterGraph(name, store, assignment)
        self.shards = list(shards)
        self._clients = [_ShardClient(spec, shard_timeout) for spec in self.shards]

    async def close(self) -> None:
        """Release worker connection pools, then the listening socket."""
        for client in self._clients:
            client.close()
        await super().close()

    # ------------------------------------------------------------------
    # worker calls
    # ------------------------------------------------------------------
    async def _call(
        self,
        client: _ShardClient,
        target: str,
        *,
        method: str = "GET",
        body: object | None = None,
    ) -> object:
        """One worker exchange; non-200 and transport failures raise."""
        try:
            status, payload = await client.request(target, method=method, body=body)
        except ShardUnavailable as error:
            raise HTTPError(503, str(error)) from None
        if status != 200:
            detail = payload.get("error") if isinstance(payload, dict) else payload
            raise HTTPError(
                status, f"shard {client.spec.name!r}: {detail}"
            )
        return payload

    async def _scatter(
        self, target: str, *, method: str = "GET", body: object | None = None
    ) -> list[object]:
        """The same call on every shard, concurrently; all must succeed."""
        return list(
            await asyncio.gather(
                *(
                    self._call(client, target, method=method, body=body)
                    for client in self._clients
                )
            )
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, request: Request) -> object:
        """Resolve the handler for ``request`` (HTTPError on bad routes)."""
        parts = [part for part in request.path.split("/") if part]
        if parts == ["healthz"]:
            self._require(request, "GET")
            return await self._healthz()
        if parts == ["stats"]:
            self._require(request, "GET")
            return await self._stats()
        if len(parts) == 3 and parts[0] == "g":
            graph = self.graphs.get(parts[1])
            if graph is None:
                raise HTTPError(404, f"unknown graph {parts[1]!r}")
            handler = {
                "knn": self._knn,
                "score": self._score,
                "embed": self._embed,
                "versions": self._versions,
                "reload": self._reload,
            }.get(parts[2])
            if handler is None:
                raise HTTPError(404, f"unknown endpoint {parts[2]!r}")
            self._require(request, "POST" if parts[2] == "reload" else "GET")
            return await handler(graph, request)
        raise HTTPError(404, f"no route for {request.path!r}")

    # ------------------------------------------------------------------
    # endpoint handlers
    # ------------------------------------------------------------------
    async def _knn(self, graph: RouterGraph, request: Request) -> dict:
        node = self._node_param(request, "node")
        k = self._int_param(request, "k", default=10, minimum=1)
        exclude_self = self._bool_param(request, "exclude_self", default=True)
        version = self._version_param(request)
        record = graph.store.version(version)  # LookupError → 404
        vector = record.vector(node)  # KeyError → 404
        # k+1 per shard suffices for a global top-(k+1): each shard's
        # contribution to the global list is a prefix of its own ranking.
        fetch = k + 1 if exclude_self else k
        body = {
            "vector": [float(x) for x in vector],
            "k": fetch,
            "version": None if version is None else record.version,
        }
        answers = await self._scatter(
            f"/g/{graph.name}/knn", method="POST", body=body
        )
        served = {answer["version"] for answer in answers}
        if len(served) != 1:
            raise HTTPError(
                503,
                "shards disagree on the served version "
                f"({sorted(served, key=repr)}); retry after reload",
            )
        served_version = served.pop()
        merge_record = (
            record if served_version == record.version
            else graph.store.version(served_version)
        )
        merged = merge_topk(
            [
                [(entry["node"], entry["score"]) for entry in answer["neighbors"]]
                for answer in answers
            ],
            merge_record.row_of,
            k,
            exclude=(node,) if exclude_self else (),
        )
        return {
            "graph": graph.name,
            "node": node,
            "k": k,
            "version": served_version,
            "shards": len(self.shards),
            "neighbors": [
                {"node": neighbor, "score": score} for neighbor, score in merged
            ],
        }

    async def _score(self, graph: RouterGraph, request: Request) -> dict:
        u = self._node_param(request, "u")
        v = self._node_param(request, "v")
        metric = request.query.get("metric", "cosine")
        if metric not in graph.metric_check:
            raise HTTPError(
                400, f"unknown metric {metric!r}; choose cosine or dot"
            )
        version = self._version_param(request)
        record = graph.store.version(version)  # LookupError → 404
        owner_u = graph.assignment.owner_of(u)
        owner_v = graph.assignment.owner_of(v)
        if owner_u == owner_v:
            target = (
                f"/g/{graph.name}/score?u={_node_query(u)}&v={_node_query(v)}"
                f"&metric={metric}&version={record.version}"
            )
            payload = await self._call(self._clients[owner_u], target)
            payload["shard"] = self.shards[owner_u].name
            return payload
        # Cross-shard pair: fetch both vectors from their owners and
        # score at the router with the service's own scorer — float32
        # round-trips through JSON exactly, so the score is the one the
        # unsharded service would compute.
        a_payload, b_payload = await asyncio.gather(
            self._call(
                self._clients[owner_u],
                f"/g/{graph.name}/embed?node={_node_query(u)}"
                f"&version={record.version}",
            ),
            self._call(
                self._clients[owner_v],
                f"/g/{graph.name}/embed?node={_node_query(v)}"
                f"&version={record.version}",
            ),
        )
        a = np.asarray(a_payload["vector"], dtype=np.float32)
        b = np.asarray(b_payload["vector"], dtype=np.float32)
        if metric == "cosine":
            embeddings: EmbeddingMap = {u: a, v: b}
            scores, keep = score_pairs(embeddings, [(u, v)])
            assert bool(keep[0])
            score = float(scores[0])
        else:
            score = float(np.asarray(a, dtype=np.float64) @ b)
        return {
            "graph": graph.name,
            "u": u,
            "v": v,
            "metric": metric,
            "version": record.version,
            "score": score,
            "shard": None,  # cross-shard: scored at the router
        }

    async def _embed(self, graph: RouterGraph, request: Request) -> dict:
        node = self._node_param(request, "node")
        version = self._version_param(request)
        record = graph.store.version(version)  # LookupError → 404
        owner = graph.assignment.owner_of(node)
        target = (
            f"/g/{graph.name}/embed?node={_node_query(node)}"
            f"&version={record.version}"
        )
        payload = await self._call(self._clients[owner], target)
        payload["shard"] = self.shards[owner].name
        return payload

    async def _versions(self, graph: RouterGraph, request: Request) -> dict:
        return {
            "graph": graph.name,
            "versions": [
                {
                    "version": record.version,
                    "time_step": record.time_step,
                    "nodes": record.num_nodes,
                    "dim": record.dim,
                    "metadata": record.metadata,
                }
                for record in graph.store
            ],
            "shards": len(self.shards),
            "assignment": graph.assignment.source,
        }

    async def _reload(self, graph: RouterGraph, request: Request) -> dict:
        answers = await self._scatter(f"/g/{graph.name}/reload", method="POST")
        return {
            "graph": graph.name,
            "shards": {
                spec.name: answer
                for spec, answer in zip(self.shards, answers)
            },
        }

    async def _healthz(self) -> dict:
        results = await asyncio.gather(
            *(client.request("/healthz") for client in self._clients),
            return_exceptions=True,
        )
        shards: dict[str, object] = {}
        healthy = True
        for spec, result in zip(self.shards, results):
            if isinstance(result, BaseException):
                healthy = False
                shards[spec.name] = {
                    "status": "unreachable",
                    "error": str(result),
                }
            else:
                status, payload = result
                if status != 200:
                    healthy = False
                    shards[spec.name] = {"status": "error", "detail": payload}
                else:
                    shards[spec.name] = payload
        return {
            "status": "ok" if healthy else "degraded",
            "role": "router",
            "uptime_seconds": time.monotonic() - self.stats.started_monotonic,
            "shards": shards,
            "graphs": {
                name: {
                    "versions": graph.store.num_versions,
                    "head_version": graph.store.latest.version
                    if graph.store.num_versions
                    else None,
                    "num_shards": graph.assignment.num_shards,
                    "assignment": graph.assignment.source,
                }
                for name, graph in self.graphs.items()
            },
        }

    async def _stats(self) -> dict:
        snapshot = self.stats.snapshot()
        snapshot["role"] = "router"
        results = await asyncio.gather(
            *(client.request("/stats") for client in self._clients),
            return_exceptions=True,
        )
        shards: dict[str, object] = {}
        rollup = {
            "requests": 0,
            "knn_queries": 0,
            "batch_dispatches": 0,
            "index_swaps": 0,
        }
        for spec, result in zip(self.shards, results):
            if isinstance(result, BaseException):
                shards[spec.name] = {"error": str(result)}
                continue
            status, payload = result
            if status != 200 or not isinstance(payload, dict):
                shards[spec.name] = {"error": f"status {status}"}
                continue
            shards[spec.name] = payload
            rollup["requests"] += payload.get("requests", 0)
            knn = payload.get("knn", {})
            rollup["knn_queries"] += knn.get("queries", 0)
            rollup["batch_dispatches"] += knn.get("batch_dispatches", 0)
            rollup["index_swaps"] += payload.get("hot_reload", {}).get(
                "index_swaps", 0
            )
        snapshot["shards"] = shards
        snapshot["shards_rollup"] = rollup
        return snapshot


def _node_query(node: Node) -> str:
    """A node id as a URL-safe query value (inverse of ``parse_node_id``)."""
    try:
        encoded = json.dumps(node, separators=(",", ":"))
    except (TypeError, ValueError):
        encoded = str(node)
    return quote(encoded, safe="")
