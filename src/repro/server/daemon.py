"""The embedding-serving daemon: asyncio HTTP front door over stores.

``EmbeddingDaemon`` serves one or more named
:class:`~repro.serving.service.EmbeddingService` instances from a single
process and event loop:

* ``GET /healthz`` — liveness + per-graph version summary;
* ``GET /stats`` — QPS, batch-size histogram, latency p50/p99, hot-swap
  counters (:mod:`repro.server.stats`);
* ``GET /g/<name>/knn?node=..&k=..`` — similar-node lookup. Head
  queries ride the micro-batcher (:mod:`repro.server.batcher`);
  ``version=``-pinned queries time-travel through the store's exact
  scan and bypass batching. ``vector=[..]`` (or a POST body with a
  ``vector`` key) queries by raw vector instead of node id — the
  scatter target of sharded serving (:mod:`repro.server.sharding`);
* ``GET /g/<name>/score?u=..&v=..`` — edge scoring (``metric=cosine``
  or ``dot``);
* ``GET /g/<name>/embed?node=..`` — the raw embedding vector;
* ``GET /g/<name>/versions`` — the store's published history;
* ``POST /g/<name>/reload`` — force an index hot-swap now.

Hot reload: a trainer (``StreamingGloDyNE(publish_to=store)``) keeps
publishing new versions while the daemon serves. Before every batch
dispatch — and on a background poll when traffic is idle — the daemon
refreshes the serving index incrementally and swaps it to the new head.
The swap is synchronous event-loop code, so every request observes
exactly one version: whatever the head was when its batch dispatched.
A *failing* refresh (a malformed head publish) degrades instead of
erroring: the failure is counted (``reload_errors`` /
``last_reload_error``) and queries keep answering at the last indexed
version until a well-formed head lands.

Connections are keep-alive with an idle read timeout
(:data:`DEFAULT_IDLE_TIMEOUT`): a client that holds a connection open
without sending a request is answered ``408`` and disconnected, so
silent clients cannot pin connection tasks forever.

A graph whose store has no published versions yet (a shard worker can
start before its trainer's first publish) answers ``503`` on
``knn``/``score``/``embed`` rather than surfacing an internal error.

Node ids in URLs use the JSON-ish convention of the CLI
(:func:`repro.server.http.parse_node_id`): ``node=3`` is the int 3,
``node="a"`` the string ``a``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Hashable, Mapping

from repro.serving.service import EmbeddingService
from repro.server.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW,
    MicroBatcher,
)
from repro.server.http import (
    ProtocolError,
    Request,
    parse_node_id,
    read_request,
    render_response,
)
from repro.server.stats import ServerStats

Node = Hashable

#: Idle-traffic hot-reload poll period, seconds.
DEFAULT_RELOAD_INTERVAL = 0.5

#: Idle keep-alive read timeout, seconds: how long a connection may sit
#: without sending a request before it is answered 408 and closed.
DEFAULT_IDLE_TIMEOUT = 60.0


class HTTPError(Exception):
    """A request-level failure carrying its HTTP status.

    Parameters
    ----------
    status:
        Response status code (4xx client errors, 5xx server errors).
    message:
        Problem description returned as ``{"error": message}``.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


class BaseHTTPDaemon:
    """Shared asyncio HTTP lifecycle: bind, keep-alive loop, dispatch.

    Everything transport: the listening socket, per-connection tasks,
    the keep-alive read loop with its idle timeout, request dispatch
    with error → status mapping, and the common query-parameter
    helpers. Subclasses (:class:`EmbeddingDaemon`, the shard router in
    :mod:`repro.server.sharding`) implement :meth:`_route`.

    Parameters
    ----------
    idle_timeout:
        Seconds a keep-alive connection may idle between requests
        before being answered ``408`` and closed (``> 0``); ``None``
        waits forever (trusted internal links, e.g. router → worker).
    latency_window:
        Request latencies retained for the ``/stats`` percentiles.
    """

    def __init__(
        self,
        *,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
        latency_window: int = 2048,
    ) -> None:
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(
                "idle_timeout must be positive seconds, or None to wait "
                "forever"
            )
        self.idle_timeout = idle_timeout
        self.stats = ServerStats(latency_window=latency_window)
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self.host: str | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections (``port=0``: ephemeral).

        The bound address is exposed as :attr:`host` / :attr:`port`.
        """
        if self._server is not None:
            raise RuntimeError("daemon is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Block serving until cancelled (pairs with :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Open keep-alive connections outlive the listening socket; they
        # must be torn down explicitly or their tasks leak into teardown.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive connection: read requests until close/error.

        An idle client — connected but not sending — is bounded by
        ``idle_timeout``: the read is abandoned, the connection answered
        ``408 Request Timeout`` and closed, and the task released. This
        also caps slow-loris clients that trickle partial requests.
        """
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    if self.idle_timeout is None:
                        request = await read_request(reader)
                    else:
                        request = await asyncio.wait_for(
                            read_request(reader), self.idle_timeout
                        )
                except asyncio.TimeoutError:
                    self.stats.record_idle_timeout()
                    writer.write(
                        render_response(
                            408,
                            {
                                "error": "connection idle for "
                                f"{self.idle_timeout:g}s without a "
                                "complete request"
                            },
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                except ProtocolError as error:
                    self.stats.record_protocol_error()
                    writer.write(
                        render_response(
                            error.status, {"error": str(error)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                started = time.perf_counter()
                status, payload = await self._dispatch(request)
                self.stats.record_request(
                    status, time.perf_counter() - started
                )
                writer.write(
                    render_response(
                        status, payload, keep_alive=request.keep_alive
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _dispatch(self, request: Request) -> tuple[int, object]:
        """Route one request; returns ``(status, JSON payload)``."""
        try:
            return 200, await self._route(request)
        except HTTPError as error:
            return error.status, {"error": str(error)}
        except KeyError as error:
            # Unknown node ids surface as KeyError from the store layer.
            return 404, {"error": str(error.args[0]) if error.args else "not found"}
        except LookupError as error:
            return 404, {"error": str(error)}
        except ValueError as error:
            return 400, {"error": str(error)}
        except Exception as error:  # pragma: no cover - defensive
            return 500, {"error": f"{type(error).__name__}: {error}"}

    async def _route(self, request: Request) -> object:
        """Resolve and run the handler for ``request`` (subclass hook)."""
        raise NotImplementedError

    @staticmethod
    def _require(request: Request, method: str) -> None:
        """405 unless the request used ``method``."""
        if request.method != method:
            raise HTTPError(
                405, f"{request.path} requires {method}, got {request.method}"
            )

    # ------------------------------------------------------------------
    # parameter parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _node_param(request: Request, name: str):
        raw = request.query.get(name)
        if raw is None:
            raise HTTPError(400, f"missing required query parameter {name!r}")
        return parse_node_id(raw)

    @staticmethod
    def _int_param(
        request: Request, name: str, *, default: int, minimum: int
    ) -> int:
        raw = request.query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise HTTPError(400, f"{name} must be an integer, got {raw!r}") from None
        if value < minimum:
            raise HTTPError(400, f"{name} must be >= {minimum}, got {value}")
        return value

    @staticmethod
    def _bool_param(request: Request, name: str, *, default: bool) -> bool:
        raw = request.query.get(name)
        if raw is None:
            return default
        lowered = raw.lower()
        if lowered in ("1", "true", "yes"):
            return True
        if lowered in ("0", "false", "no"):
            return False
        raise HTTPError(400, f"{name} must be a boolean, got {raw!r}")

    @staticmethod
    def _version_param(request: Request) -> int | None:
        raw = request.query.get("version")
        if raw is None or raw == "":
            return None
        try:
            return int(raw)
        except ValueError:
            raise HTTPError(
                400, f"version must be an integer, got {raw!r}"
            ) from None


class GraphEntry:
    """One served graph: its service, its batcher, its swap bookkeeping.

    Parameters
    ----------
    name:
        Route segment the graph serves under (``/g/<name>/...``).
    service:
        The query facade; its store is the graph's system of record.
    stats:
        The daemon's shared :class:`ServerStats`.
    max_batch, window:
        Micro-batcher tuning (see :class:`MicroBatcher`).
    reload_error_sink:
        Optional ``(graph name, error)`` callback invoked when a hot
        reload fails inside the batcher's degraded dispatch — the
        daemon surfaces it as ``last_reload_error`` on ``/healthz``.
    """

    def __init__(
        self,
        name: str,
        service: EmbeddingService,
        stats: ServerStats,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        window: float = DEFAULT_WINDOW,
        reload_error_sink=None,
    ) -> None:
        self.name = name
        self.service = service
        self.stats = stats
        self.reload_error_sink = reload_error_sink
        self.batcher = MicroBatcher(
            service,
            max_batch=max_batch,
            window=window,
            stats=stats,
            before_dispatch=self.maybe_reload,
            on_reload_error=self._on_reload_error,
        )

    def maybe_reload(self) -> int:
        """Swap the serving index to the store head if it moved.

        Incremental: only rows the new version actually moved re-hash
        (:meth:`EmbeddingService.refresh
        <repro.serving.service.EmbeddingService.refresh>`). Runs
        synchronously on the event loop, so concurrent requests never
        see a half-refreshed index. Returns the number of rows
        re-hashed (0 when already at head).
        """
        store = self.service.store
        if store.num_versions == 0:
            return 0
        if self.service.indexed_version == store.latest.version:
            return 0
        touched = self.service.refresh()
        self.stats.record_swap(touched)
        return touched

    def _on_reload_error(self, error: Exception) -> None:
        """Batcher reload-failure hook: forward to the daemon's sink."""
        if self.reload_error_sink is not None:
            self.reload_error_sink(self.name, error)

    def describe(self) -> dict:
        """Health payload for this graph: versions, head size, cache."""
        store = self.service.store
        head = store.latest if store.num_versions else None
        payload = {
            "versions": store.num_versions,
            "indexed_version": self.service.indexed_version,
            "head_version": None if head is None else head.version,
            "head_nodes": None if head is None else head.num_nodes,
            "dim": None if head is None else head.dim,
            "backend": self.service.index.backend_name,
            "cache": self.service.cache_info,
            "pending": self.batcher.pending,
        }
        index = self.service.index
        if getattr(index, "accepts_assignment", False):
            # Partition-aware backends surface their coarse-quantizer
            # shape so operators can see cell balance at a glance.
            sizes = index.cell_sizes
            payload["cells"] = {
                "count": index.num_cells,
                "nonempty": sum(1 for size in sizes if size),
                "largest": max(sizes, default=0),
                "nprobe": index.nprobe,
            }
        quantized = getattr(index, "quantized", None)
        if quantized is not None:
            payload["quantized"] = quantized
        if store.store_dir is not None:
            # Tiered stores report where the bytes live so operators
            # can watch spill/compaction take effect without shelling
            # into the box.
            payload["storage"] = store.storage_info()
        return payload


class EmbeddingDaemon(BaseHTTPDaemon):
    """Async HTTP daemon multiplexing named embedding services.

    Parameters
    ----------
    services:
        ``{route name: EmbeddingService}``. Names appear in URLs
        (``/g/<name>/knn``) and must be non-empty and ``/``-free.
    max_batch, window:
        Micro-batching knobs applied to every graph (see
        :class:`MicroBatcher`; ``max_batch=1`` disables coalescing).
    reload_interval:
        Idle hot-reload poll period in seconds (``> 0``); ``None``
        disables the background poller (swaps then only happen on the
        next batch dispatch or an explicit ``/reload``). Non-positive
        values are rejected — a zero sleep would busy-spin the loop.
    idle_timeout:
        Keep-alive idle read timeout in seconds, answered ``408``
        (see :class:`BaseHTTPDaemon`); ``None`` waits forever — shard
        workers run that way so the router's pooled connections are
        never closed under it.

    Examples
    --------
    >>> daemon = EmbeddingDaemon({"main": service})
    >>> await daemon.start(port=0)          # binds an ephemeral port
    >>> daemon.port
    54321
    >>> await daemon.close()
    """

    def __init__(
        self,
        services: Mapping[str, EmbeddingService],
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        window: float = DEFAULT_WINDOW,
        reload_interval: float | None = DEFAULT_RELOAD_INTERVAL,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
        latency_window: int = 2048,
    ) -> None:
        if not services:
            raise ValueError("daemon needs at least one named service")
        if reload_interval is not None and reload_interval <= 0:
            raise ValueError(
                "reload_interval must be positive seconds, or None to "
                "disable the background poller"
            )
        super().__init__(idle_timeout=idle_timeout, latency_window=latency_window)
        self.graphs: dict[str, GraphEntry] = {}
        self._max_batch = max_batch
        self._window = window
        for name, service in services.items():
            self.add_graph(name, service, max_batch=max_batch, window=window)
        self.reload_interval = reload_interval
        self._reload_task: asyncio.Task | None = None
        self.last_reload_error: str | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def add_graph(
        self,
        name: str,
        service: EmbeddingService,
        *,
        max_batch: int | None = None,
        window: float | None = None,
    ) -> GraphEntry:
        """Register ``service`` under ``/g/<name>/``; returns its entry."""
        if not name or "/" in name:
            raise ValueError(f"graph name must be non-empty and /-free: {name!r}")
        if name in self.graphs:
            raise ValueError(f"graph {name!r} is already served")
        entry = GraphEntry(
            name,
            service,
            self.stats,
            max_batch=self._max_batch if max_batch is None else max_batch,
            window=self._window if window is None else window,
            reload_error_sink=self._note_reload_error,
        )
        self.graphs[name] = entry
        return entry

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and accept (see :meth:`BaseHTTPDaemon.start`); also
        starts the background hot-reload poller unless
        ``reload_interval`` is None.
        """
        await super().start(host=host, port=port)
        if self.reload_interval is not None:
            self._reload_task = asyncio.get_running_loop().create_task(
                self._reload_poller()
            )

    async def close(self) -> None:
        """Stop accepting, drain pending batches, and release the port."""
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
            self._reload_task = None
        for entry in self.graphs.values():
            entry.batcher.flush()
        await super().close()

    def _note_reload_error(self, name: str, error: Exception) -> None:
        """Record a reload failure's message for ``/healthz`` surfacing."""
        self.last_reload_error = f"{name}: {type(error).__name__}: {error}"

    async def _reload_poller(self) -> None:
        """Swap idle graphs to their store heads every ``reload_interval``.

        A failing refresh (e.g. a trainer published a head with a
        mismatched dim) must not silently kill the poller for the
        daemon's lifetime: the error is counted, surfaced on
        ``/healthz``, and the poller keeps trying — the next publish may
        be well-formed again.
        """
        while True:
            await asyncio.sleep(self.reload_interval)
            for entry in self.graphs.values():
                try:
                    entry.maybe_reload()
                except Exception as error:
                    self.stats.reload_errors += 1
                    self._note_reload_error(entry.name, error)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, request: Request) -> object:
        """Resolve the handler for ``request`` (HTTPError on bad routes)."""
        parts = [part for part in request.path.split("/") if part]
        if parts == ["healthz"]:
            self._require(request, "GET")
            return self._healthz()
        if parts == ["stats"]:
            self._require(request, "GET")
            return self._stats()
        if len(parts) == 3 and parts[0] == "g":
            entry = self.graphs.get(parts[1])
            if entry is None:
                raise HTTPError(404, f"unknown graph {parts[1]!r}")
            handler = {
                "knn": self._knn,
                "score": self._score,
                "embed": self._embed,
                "versions": self._versions,
                "reload": self._reload,
            }.get(parts[2])
            if handler is None:
                raise HTTPError(404, f"unknown endpoint {parts[2]!r}")
            if parts[2] == "knn":
                # Vector queries may POST (a JSON body carries any dim;
                # the request line could not); node lookups stay GET.
                if request.method not in ("GET", "POST"):
                    raise HTTPError(
                        405,
                        f"{request.path} requires GET or POST, "
                        f"got {request.method}",
                    )
            else:
                self._require(request, "POST" if parts[2] == "reload" else "GET")
            return await handler(entry, request)
        raise HTTPError(404, f"no route for {request.path!r}")

    # ------------------------------------------------------------------
    # endpoint handlers
    # ------------------------------------------------------------------
    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self.stats.started_monotonic,
            "last_reload_error": self.last_reload_error,
            "graphs": {
                name: entry.describe() for name, entry in self.graphs.items()
            },
        }

    def _stats(self) -> dict:
        snapshot = self.stats.snapshot()
        snapshot["graphs"] = {
            name: entry.describe() for name, entry in self.graphs.items()
        }
        return snapshot

    @staticmethod
    def _require_published(entry: GraphEntry) -> None:
        """503 while the graph's store has nothing published yet.

        A shard worker can come up before its trainer's first publish;
        until then query routes are *unavailable* (retryable), not
        erroring — and ``/healthz`` / ``/versions`` still answer.
        """
        if entry.service.store.num_versions == 0:
            raise HTTPError(
                503,
                f"graph {entry.name!r} has no published versions yet",
            )

    async def _knn(self, entry: GraphEntry, request: Request) -> dict:
        self._require_published(entry)
        vector = self._vector_query(request)
        if vector is not None:
            return self._knn_by_vector(entry, request, vector)
        self._require(request, "GET")
        node = self._node_param(request, "node")
        k = self._int_param(request, "k", default=10, minimum=1)
        exclude_self = self._bool_param(request, "exclude_self", default=True)
        version = self._version_param(request)
        if version is None:
            # The served version is captured inside the dispatch —
            # reading it here, after the await, would race a hot swap
            # landing before this coroutine resumed.
            result, served = await entry.batcher.query_with_version(
                node, k, exclude_self=exclude_self
            )
        else:
            # Pinned versions bypass the batcher: they scan immutable
            # history exactly and must not ride the head's batch.
            self.stats.record_knn()
            result = entry.service.query_knn(
                node, k, version=version, exclude_self=exclude_self
            )
            served = entry.service.store.resolve_version(version)
        return {
            "graph": entry.name,
            "node": node,
            "k": k,
            "version": served,
            "neighbors": [
                {"node": neighbor, "score": score} for neighbor, score in result
            ],
        }

    def _knn_by_vector(
        self, entry: GraphEntry, request: Request, vector: list[float]
    ) -> dict:
        """kNN by raw query vector — the router's scatter target.

        Unbatched (every scattered vector is distinct, so coalescing
        buys nothing) and self-exclusion-free (there is no self). A
        failing hot reload degrades to the last indexed version, like
        the batcher does for node queries.
        """
        k = self._int_param(request, "k", default=10, minimum=1)
        version = self._version_param(request)
        self.stats.record_knn()
        if version is None:
            try:
                entry.maybe_reload()
            except Exception as error:
                self.stats.reload_errors += 1
                self._note_reload_error(entry.name, error)
                indexed = entry.service.indexed_version
                if indexed is None:
                    raise HTTPError(
                        503,
                        f"graph {entry.name!r} cannot index its head and "
                        f"has no previous version to serve: {error}",
                    ) from None
                version = indexed
        result = entry.service.query_knn_vector(vector, k, version=version)
        served = (
            entry.service.indexed_version
            if version is None
            else entry.service.store.resolve_version(version)
        )
        return {
            "graph": entry.name,
            "node": None,
            "k": k,
            "version": served,
            "neighbors": [
                {"node": neighbor, "score": score} for neighbor, score in result
            ],
        }

    async def _score(self, entry: GraphEntry, request: Request) -> dict:
        self._require_published(entry)
        u = self._node_param(request, "u")
        v = self._node_param(request, "v")
        metric = request.query.get("metric", "cosine")
        version = self._version_param(request)
        score = entry.service.score_edge(u, v, version=version, metric=metric)
        return {
            "graph": entry.name,
            "u": u,
            "v": v,
            "metric": metric,
            "version": entry.service.store.resolve_version(version),
            "score": score,
        }

    async def _embed(self, entry: GraphEntry, request: Request) -> dict:
        self._require_published(entry)
        node = self._node_param(request, "node")
        version = self._version_param(request)
        record = entry.service.store.version(version)
        vector = record.vector(node)
        return {
            "graph": entry.name,
            "node": node,
            "version": record.version,
            "dim": record.dim,
            "vector": [float(x) for x in vector],
        }

    async def _versions(self, entry: GraphEntry, request: Request) -> dict:
        store = entry.service.store
        return {
            "graph": entry.name,
            "versions": [
                {
                    "version": record.version,
                    "time_step": record.time_step,
                    "nodes": record.num_nodes,
                    "dim": record.dim,
                    "metadata": record.metadata,
                }
                for record in store
            ],
            "indexed_version": entry.service.indexed_version,
        }

    async def _reload(self, entry: GraphEntry, request: Request) -> dict:
        touched = entry.maybe_reload()
        return {
            "graph": entry.name,
            "indexed_version": entry.service.indexed_version,
            "rows_rehashed": touched,
        }

    # ------------------------------------------------------------------
    # vector-query parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _vector_query(request: Request) -> list[float] | None:
        """The ``vector`` of a by-vector kNN request, or None.

        Two carriers: a ``vector=[..]`` JSON query parameter (small
        dims, human use) or a POST body ``{"vector": [..]}`` (any dim —
        the router's scatter path; request lines are length-capped).
        JSON float round-tripping of float32 values is exact, so a
        vector survives the HTTP hop bit for bit.
        """
        raw: object | None = None
        if request.method == "POST":
            if not request.body:
                raise HTTPError(400, "POST /knn requires a JSON body")
            try:
                body = json.loads(request.body)
            except ValueError:
                raise HTTPError(400, "POST /knn body is not valid JSON") from None
            if not isinstance(body, dict) or "vector" not in body:
                raise HTTPError(400, 'POST /knn body needs a "vector" key')
            raw = body["vector"]
            # Body-carried parameters join the query map so the shared
            # _int_param/_version_param helpers see them.
            for key in ("k", "version"):
                if key in body and body[key] is not None:
                    request.query.setdefault(key, str(body[key]))
        elif "vector" in request.query:
            try:
                raw = json.loads(request.query["vector"])
            except ValueError:
                raise HTTPError(
                    400, "vector must be a JSON array of numbers"
                ) from None
        if raw is None:
            return None
        if not isinstance(raw, list) or not raw or not all(
            isinstance(x, (int, float)) and not isinstance(x, bool) for x in raw
        ):
            raise HTTPError(400, "vector must be a non-empty array of numbers")
        return [float(x) for x in raw]
