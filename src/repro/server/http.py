"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

The daemon does not need a web framework: its surface is a handful of
JSON GET/POST routes, and pulling in one would break the repo's
no-new-runtime-deps rule. This module is the smallest honest subset of
RFC 9112 the serving workload requires:

* request line + headers + ``Content-Length`` bodies (no chunked
  transfer coding — a request carrying ``Transfer-Encoding`` is answered
  ``400``);
* HTTP/1.1 keep-alive semantics (``Connection: close`` honoured, 1.0
  defaults to close);
* hard limits on request-line, header-count, and body size so a
  misbehaving client cannot balloon the process.

Anything outside that subset raises :class:`ProtocolError`, which the
connection loop converts into a 4xx response and a closed connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Longest accepted request line (method + target + version), bytes.
MAX_REQUEST_LINE = 8192
#: Most header lines accepted per request.
MAX_HEADER_LINES = 100
#: Largest accepted request body, bytes.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed HTTP framing; answered with ``status`` and a closed socket.

    Parameters
    ----------
    message:
        Human-readable problem, echoed in the JSON error body.
    status:
        HTTP status code for the error response (default 400).
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


@dataclass
class Request:
    """One parsed HTTP request.

    Attributes
    ----------
    method:
        Upper-case request method (``GET``, ``POST``, ...).
    path:
        Decoded path component of the target, query string stripped.
    query:
        First value per query-string key (repeats collapse left-to-right).
    headers:
        Header map with lower-cased field names; later duplicates win.
    body:
        Raw request body (``b""`` when absent).
    version:
        ``"HTTP/1.0"`` or ``"HTTP/1.1"``.
    """

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (RFC 9112 §9.3)."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes | None:
    """One CRLF- (or bare-LF-) terminated line, without its terminator.

    Returns ``None`` on clean EOF before any byte; raises
    :class:`ProtocolError` on truncation mid-line or an over-long line.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("line exceeds stream limit", 413) from None
    if len(line) > limit:
        raise ProtocolError("line too long", 413)
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse the next request off ``reader``.

    Returns
    -------
    Request or None
        ``None`` on a clean end-of-stream before any request byte (the
        client simply closed a keep-alive connection).

    Raises
    ------
    ProtocolError
        On any framing violation: bad request line, malformed header,
        unsupported transfer coding, over-long line/body, or truncation.
    """
    raw = await _read_line(reader, MAX_REQUEST_LINE)
    if raw is None:
        return None
    if not raw:
        # Tolerate a single stray CRLF between pipelined requests.
        raw = await _read_line(reader, MAX_REQUEST_LINE)
        if raw is None:
            return None
    try:
        line = raw.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError("request line is not ASCII") from None
    parts = line.split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    if not method.isalpha():
        raise ProtocolError(f"malformed method {method!r}")

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES + 1):
        raw = await _read_line(reader, MAX_REQUEST_LINE)
        if raw is None:
            raise ProtocolError("connection closed inside headers")
        if not raw:
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep or not name or name != name.strip():
            raise ProtocolError(f"malformed header line: {raw!r}")
        headers[name.lower()] = value.strip()
    else:
        raise ProtocolError("too many header lines", 413)

    if "transfer-encoding" in headers:
        raise ProtocolError("chunked transfer coding is not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("content-length is not an integer") from None
        if length < 0:
            raise ProtocolError("negative content-length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError("request body too large", 413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed inside body") from None

    split = urlsplit(target)
    query: dict[str, str] = {}
    for key, value in parse_qsl(split.query, keep_blank_values=True):
        query.setdefault(key, value)  # first value wins, as documented
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def render_response(
    status: int,
    payload: object,
    *,
    keep_alive: bool = True,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialise one JSON response to wire bytes.

    Parameters
    ----------
    status:
        HTTP status code (unknown codes render with reason ``Unknown``).
    payload:
        JSON-serialisable response body.
    keep_alive:
        Emitted as the ``Connection`` header; the connection loop must
        close the socket itself when False.
    headers:
        Extra response headers appended verbatim.

    Returns
    -------
    bytes
        Status line, headers, and the UTF-8 JSON body.
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json; charset=utf-8",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def parse_node_id(raw: str):
    """Decode a node id from its URL/CLI string form.

    JSON when it parses — ``"3"`` stays the int 3, ``'"a"'`` the string
    ``"a"`` — else the raw string. The inverse of how node ids render
    into JSON responses, so round-tripping an id through a response and
    back into a query preserves its type.
    """
    try:
        return json.loads(raw)
    except (ValueError, TypeError):
        return raw
