"""Async embedding-serving daemon: the network front door to ``repro.serving``.

``repro.serving`` gives one process a versioned store, a kNN index, and
a query facade; this package puts them behind an HTTP boundary so many
clients can share them:

* :class:`~repro.server.daemon.EmbeddingDaemon` — asyncio HTTP/1.1
  daemon (stdlib only) multiplexing named
  :class:`~repro.serving.service.EmbeddingService` instances under
  ``/g/<name>/...``, with ``/healthz`` and ``/stats``;
* :class:`~repro.server.batcher.MicroBatcher` — request micro-batching:
  concurrent ``/knn`` lookups coalesce (per event-loop tick, or a
  configurable hold-back window, up to 64 per dispatch) into one
  ``query_knn_batch`` dispatch, bit-identical to unbatched answers on
  the LSH backend;
* :class:`~repro.server.stats.ServerStats` — QPS, batch-size histogram,
  latency percentiles, hot-swap counters;
* :mod:`repro.server.http` — the minimal HTTP framing layer;
* :class:`~repro.server.sharding.ShardRouter` +
  :mod:`repro.server.worker` — the multi-process tier: one worker
  process per shard (``split_store``) behind a scatter-gather router
  whose merged top-k is bit-identical to the single-process exact
  answer (``serve-http --shards N``).

Start one from the CLI (``python -m repro serve-http --store
main=store.npz``), or in-process::

    daemon = EmbeddingDaemon({"main": EmbeddingService(store)})
    await daemon.start(port=8080)
    await daemon.serve_forever()

See ``examples/http_serving.py`` for a full client walkthrough and
``benchmarks/bench_server_qps.py`` for the batched-vs-unbatched QPS
telemetry.
"""

from repro.server.batcher import MicroBatcher
from repro.server.daemon import (
    BaseHTTPDaemon,
    EmbeddingDaemon,
    GraphEntry,
    HTTPError,
)
from repro.server.http import ProtocolError, parse_node_id
from repro.server.sharding import (
    ShardRouter,
    ShardSpec,
    ShardUnavailable,
    merge_topk,
)
from repro.server.stats import ServerStats
from repro.server.worker import (
    WorkerHandle,
    shutdown_workers,
    spawn_workers,
)

__all__ = [
    "BaseHTTPDaemon",
    "EmbeddingDaemon",
    "GraphEntry",
    "HTTPError",
    "MicroBatcher",
    "ProtocolError",
    "ServerStats",
    "ShardRouter",
    "ShardSpec",
    "ShardUnavailable",
    "WorkerHandle",
    "merge_topk",
    "parse_node_id",
    "shutdown_workers",
    "spawn_workers",
]
