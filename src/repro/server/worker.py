"""Shard worker processes: one :class:`EmbeddingDaemon` per shard store.

The GIL caps one asyncio daemon at roughly one core of kNN throughput,
so the sharded tier (:mod:`repro.server.sharding`) runs one *process*
per shard — each with its own event loop, its own
:class:`~repro.serving.service.EmbeddingService`, its own micro-batcher
and hot-reload poller — and reports its ephemeral port back to the
parent over a pipe. Workers use the ``spawn`` start method (no
inherited event-loop or socket state) and bind ``port=0``; the parent
collects the resulting :class:`~repro.server.sharding.ShardSpec` list
and hands it to the router.

Workers serve with ``idle_timeout=None``: the router is the only
client and pools keep-alive connections, so idling them out would only
churn sockets. The router's own front door keeps the public timeout.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.serving.store import EmbeddingStore
from repro.server.sharding import ShardSpec

#: Seconds the parent waits for every worker to report readiness.
DEFAULT_START_TIMEOUT = 60.0


def _worker_main(conn, stores: dict, host: str, options: dict) -> None:
    """Entry point of one spawned shard worker process.

    Builds the services, binds an ephemeral port, reports
    ``("ready", host, port)`` (or ``("error", message)``) over ``conn``,
    then serves until the parent terminates the process.
    """
    import asyncio

    from repro.serving.service import EmbeddingService
    from repro.server.daemon import EmbeddingDaemon

    try:
        services = {
            name: EmbeddingService(store, backend=options["backend"])
            for name, store in stores.items()
        }
        daemon = EmbeddingDaemon(
            services,
            max_batch=options["max_batch"],
            window=options["window"],
            reload_interval=options["reload_interval"],
            idle_timeout=None,  # the router pools keep-alive connections
        )
    except Exception as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return

    async def run() -> None:
        await daemon.start(host=host, port=0)
        conn.send(("ready", daemon.host, daemon.port))
        conn.close()
        try:
            await daemon.serve_forever()
        finally:
            await daemon.close()

    try:
        asyncio.run(run())
    except (KeyboardInterrupt, asyncio.CancelledError):  # pragma: no cover
        pass


@dataclass
class WorkerHandle:
    """One running shard worker: its address and its process."""

    spec: ShardSpec
    process: multiprocessing.process.BaseProcess

    def terminate(self, timeout: float = 5.0) -> None:
        """Stop the worker: SIGTERM, join, SIGKILL if it lingers."""
        if not self.process.is_alive():
            self.process.join(timeout=0)
            return
        self.process.terminate()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout=timeout)


def spawn_workers(
    shard_stores: Sequence[Mapping[str, EmbeddingStore]],
    *,
    host: str = "127.0.0.1",
    backend: str = "lsh",
    max_batch: int = 64,
    window: float = 0.0,
    reload_interval: float | None = None,
    start_timeout: float = DEFAULT_START_TIMEOUT,
) -> list[WorkerHandle]:
    """Spawn one daemon process per shard; block until all are ready.

    Parameters
    ----------
    shard_stores:
        One ``{graph name: shard store}`` map per worker — element
        ``i`` of each graph's :func:`repro.serving.shards.split_store`
        output. Every worker must serve the same graph names.
    host:
        Interface every worker binds (ephemeral port).
    backend:
        Serving index backend for the workers' services (``exact`` is
        the bit-identical scatter-gather reference).
    max_batch, window:
        Micro-batcher knobs forwarded to each worker's daemon.
    reload_interval:
        Worker hot-reload poll period; ``None`` (the default) disables
        it — spawned workers hold immutable store *copies*, so there is
        no head movement to follow.
    start_timeout:
        Seconds to wait for every worker's readiness report before
        tearing all of them down and raising.

    Returns
    -------
    list of WorkerHandle
        One handle per worker, in shard-id order (``shard-0``, ...).

    Raises
    ------
    RuntimeError
        When any worker dies or stays silent before reporting ready;
        every already-started worker is terminated first.
    """
    if not shard_stores:
        raise ValueError("spawn_workers needs at least one shard store map")
    ctx = multiprocessing.get_context("spawn")
    options = {
        "backend": backend,
        "max_batch": max_batch,
        "window": window,
        "reload_interval": reload_interval,
    }
    started: list[tuple[int, object, multiprocessing.process.BaseProcess]] = []
    handles: list[WorkerHandle] = []
    try:
        for shard_id, stores in enumerate(shard_stores):
            receiver, sender = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_main,
                args=(sender, dict(stores), host, options),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            sender.close()
            started.append((shard_id, receiver, process))
        deadline = time.monotonic() + start_timeout
        for shard_id, receiver, process in started:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not receiver.poll(remaining):
                raise RuntimeError(
                    f"shard worker {shard_id} did not report readiness "
                    f"within {start_timeout:g}s"
                )
            try:
                message = receiver.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard worker {shard_id} died before reporting ready"
                ) from None
            finally:
                receiver.close()
            if message[0] != "ready":
                raise RuntimeError(
                    f"shard worker {shard_id} failed to start: {message[1]}"
                )
            handles.append(
                WorkerHandle(
                    spec=ShardSpec(f"shard-{shard_id}", message[1], message[2]),
                    process=process,
                )
            )
    except BaseException:
        for _, _, process in started:
            if process.is_alive():
                process.terminate()
        for _, _, process in started:
            process.join(timeout=5.0)
        raise
    return handles


def shutdown_workers(handles: Sequence[WorkerHandle]) -> None:
    """Terminate every worker and reap the processes."""
    for handle in handles:
        if handle.process.is_alive():
            handle.process.terminate()
    for handle in handles:
        handle.terminate()
