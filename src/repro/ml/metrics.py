"""Evaluation metrics implemented from their mathematical definitions.

Provides the three metric families the paper's evaluation uses:
ROC-AUC (link prediction, Table 2), precision@k over cosine neighbourhoods
(graph reconstruction, Table 1), and micro/macro F1 (node classification,
Table 3).
"""

from __future__ import annotations

import numpy as np


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney rank statistic.

    Ties in ``scores`` receive average ranks, matching the standard
    definition. Requires at least one positive and one negative label.
    """
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both positive and negative samples")

    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over tied groups.
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i: j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = ranks[y_true].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def precision_at_k(retrieved: list, relevant: set, k: int) -> float:
    """P@k(v) = |Q(v)@k ∩ N(v)| / min(k, |N(v)|) (paper Section 5.2.1).

    ``retrieved`` is the ranked candidate list; only its first ``k``
    entries are considered.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not relevant:
        raise ValueError("the relevant set must be non-empty")
    top = retrieved[:k]
    hits = sum(1 for item in top if item in relevant)
    return hits / min(k, len(relevant))


def cosine_similarity_matrix(queries: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity; zero vectors yield zero similarity."""
    q_norm = np.linalg.norm(queries, axis=1, keepdims=True)
    b_norm = np.linalg.norm(base, axis=1, keepdims=True)
    q = np.divide(queries, q_norm, out=np.zeros_like(queries), where=q_norm > 0)
    b = np.divide(base, b_norm, out=np.zeros_like(base), where=b_norm > 0)
    return q @ b.T


def top_k_neighbors(
    embeddings: np.ndarray,
    k: int,
    exclude_self: bool = True,
    block_size: int = 1024,
) -> np.ndarray:
    """Indices of the top-k cosine-similar rows for every row.

    Works in row blocks to bound memory at ``block_size * n`` floats.
    Returns an ``(n, k)`` int64 matrix ordered by decreasing similarity.
    """
    n = embeddings.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, n - 1 if exclude_self else n)
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    unit = np.divide(
        embeddings, norms, out=np.zeros_like(embeddings), where=norms > 0
    )
    result = np.empty((n, k), dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        sims = unit[start:stop] @ unit.T
        if exclude_self:
            rows = np.arange(stop - start)
            sims[rows, np.arange(start, stop)] = -np.inf
        # argpartition for the top-k, then sort those k by similarity.
        part = np.argpartition(sims, -k, axis=1)[:, -k:]
        part_scores = np.take_along_axis(sims, part, axis=1)
        order = np.argsort(-part_scores, axis=1, kind="stable")
        result[start:stop] = np.take_along_axis(part, order, axis=1)
    return result


def f1_scores(
    y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None
) -> tuple[float, float]:
    """(micro-F1, macro-F1) for multi-class single-label predictions.

    Micro-F1 aggregates TP/FP/FN over classes (equals accuracy in the
    single-label case); macro-F1 averages per-class F1 with zero-division
    giving 0 for absent classes, as in scikit-learn's default.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()), key=repr)

    tp_total = fp_total = fn_total = 0
    per_class_f1: list[float] = []
    for label in labels:
        tp = int(np.sum((y_pred == label) & (y_true == label)))
        fp = int(np.sum((y_pred == label) & (y_true != label)))
        fn = int(np.sum((y_pred != label) & (y_true == label)))
        tp_total += tp
        fp_total += fp
        fn_total += fn
        denominator = 2 * tp + fp + fn
        per_class_f1.append(2 * tp / denominator if denominator else 0.0)

    micro_denominator = 2 * tp_total + fp_total + fn_total
    micro = 2 * tp_total / micro_denominator if micro_denominator else 0.0
    macro = float(np.mean(per_class_f1)) if per_class_f1 else 0.0
    return micro, macro
