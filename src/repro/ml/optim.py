"""Adam optimiser for the numpy baselines (DynGEM's autoencoder, BCGD).

Kingma & Ba (2015) with bias correction. Parameters are updated in place;
each parameter array owns its own moment state, keyed by identity, so one
``Adam`` instance can drive a whole model.
"""

from __future__ import annotations

import numpy as np


class Adam:
    """Stateful Adam: call ``step(param, grad)`` for every parameter array."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._state: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}

    def step(self, param: np.ndarray, grad: np.ndarray) -> None:
        """Apply one Adam update to ``param`` in place."""
        if param.shape != grad.shape:
            raise ValueError("parameter and gradient shapes differ")
        key = id(param)
        m, v, t = self._state.get(
            key, (np.zeros_like(param), np.zeros_like(param), 0)
        )
        t += 1
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._state[key] = (m, v, t)

    def forget(self, param: np.ndarray) -> None:
        """Drop the moment state of a parameter (after reshaping/growing)."""
        self._state.pop(id(param), None)
