"""Principal component analysis via SVD (Figure 5's 128 -> 2 projection)."""

from __future__ import annotations

import numpy as np


class PCA:
    """Minimal PCA: fit on centred data, project onto top components.

    Component signs are fixed so the largest-magnitude loading of every
    component is positive — keeps projections deterministic across runs,
    which the Figure 5 stability analysis relies on.
    """

    def __init__(self, n_components: int = 2) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be 2-D")
        k = min(self.n_components, *data.shape)
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        components = vt[:k]
        # Deterministic sign convention.
        for row in components:
            pivot = np.argmax(np.abs(row))
            if row[pivot] < 0:
                row *= -1.0
        self.components_ = components
        total_var = float((singular_values**2).sum())
        if total_var > 0:
            self.explained_variance_ratio_ = singular_values[:k] ** 2 / total_var
        else:
            self.explained_variance_ratio_ = np.zeros(k)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA is not fitted")
        return (np.asarray(data, dtype=np.float64) - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)


def procrustes_disparity(
    reference: np.ndarray, target: np.ndarray, allow_rotation: bool
) -> float:
    """Normalised alignment residual between two point clouds.

    With ``allow_rotation`` the optimal orthogonal map (Procrustes) is
    applied first; without it, only translation is removed. Comparing the
    two residuals quantifies Figure 5's observation: SGNS-retrain needs a
    rotation to align consecutive embeddings, GloDyNE does not.
    """
    a = np.asarray(reference, dtype=np.float64)
    b = np.asarray(target, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("point clouds must have identical shapes")
    a = a - a.mean(axis=0)
    b = b - b.mean(axis=0)
    scale = np.linalg.norm(a)
    if scale == 0:
        raise ValueError("reference cloud has zero variance")
    if allow_rotation:
        u, _, vt = np.linalg.svd(b.T @ a)
        rotation = u @ vt
        b = b @ rotation
    return float(np.linalg.norm(a - b) ** 2 / scale**2)
