"""Logistic regression (binary + one-vs-rest) — the scikit-learn substitute.

The node-classification task (Section 5.2.3) trains a one-vs-rest logistic
regression on node embeddings. This implementation optimises the L2-
regularised log-loss with scipy's L-BFGS, which converges in a handful of
iterations at embedding-scale feature counts.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.metrics import f1_scores  # noqa: F401  (re-export convenience)
from repro.sgns.model import log_sigmoid, sigmoid


class LogisticRegression:
    """Binary logistic regression with L2 regularisation.

    Minimises ``mean(log-loss) + (1 / (2 C n)) ||w||^2`` — the same
    parameterisation as scikit-learn's ``C`` (larger C = weaker
    regularisation). The intercept is unregularised.
    """

    def __init__(self, c: float = 1.0, max_iter: int = 200) -> None:
        if c <= 0:
            raise ValueError("C must be positive")
        self.c = float(c)
        self.max_iter = int(max_iter)
        self.weights: np.ndarray | None = None
        self.intercept: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on ``features`` (n, d) and binary ``labels`` in {0, 1}."""
        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be binary (0/1)")
        n, d = features.shape
        signs = 2.0 * y - 1.0  # {0,1} -> {-1,+1}
        reg = 1.0 / (2.0 * self.c * n)

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = params[:d], params[d]
            margins = signs * (features @ w + b)
            loss = -log_sigmoid(margins).mean() + reg * (w @ w)
            # grad of -mean(logσ(s·m)) is mean(-σ(-m)·s·x)
            coefficients = -sigmoid(-margins) * signs / n
            grad_w = features.T @ coefficients + 2.0 * reg * w
            grad_b = coefficients.sum()
            return loss, np.concatenate([grad_w, [grad_b]])

        x0 = np.zeros(d + 1)
        result = minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.weights = result.x[:d]
        self.intercept = float(result.x[d])
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(features, dtype=np.float64) @ self.weights + self.intercept

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0.0).astype(np.int64)


class OneVsRestLogisticRegression:
    """Multi-class classifier: one binary model per class, argmax decision."""

    def __init__(self, c: float = 1.0, max_iter: int = 200) -> None:
        self.c = c
        self.max_iter = max_iter
        self.classes_: list = []
        self._models: list[LogisticRegression] = []

    def fit(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "OneVsRestLogisticRegression":
        labels = np.asarray(labels)
        self.classes_ = sorted(set(labels.tolist()), key=repr)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self._models = []
        for cls in self.classes_:
            binary = (labels == cls).astype(np.int64)
            model = LogisticRegression(c=self.c, max_iter=self.max_iter)
            model.fit(features, binary)
            self._models.append(model)
        return self

    def decision_matrix(self, features: np.ndarray) -> np.ndarray:
        if not self._models:
            raise RuntimeError("model is not fitted")
        return np.column_stack(
            [model.decision_function(features) for model in self._models]
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        winners = np.argmax(self.decision_matrix(features), axis=1)
        return np.array([self.classes_[i] for i in winners])
