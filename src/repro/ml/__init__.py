"""Minimal ML substrate: metrics, logistic regression, PCA, t-tests."""

from repro.ml.logreg import LogisticRegression, OneVsRestLogisticRegression
from repro.ml.metrics import (
    cosine_similarity_matrix,
    f1_scores,
    precision_at_k,
    roc_auc_score,
    top_k_neighbors,
)
from repro.ml.pca import PCA, procrustes_disparity
from repro.ml.stats import TTestResult, best_two_marker, two_sample_ttest

__all__ = [
    "LogisticRegression",
    "OneVsRestLogisticRegression",
    "PCA",
    "TTestResult",
    "best_two_marker",
    "cosine_similarity_matrix",
    "f1_scores",
    "precision_at_k",
    "procrustes_disparity",
    "roc_auc_score",
    "top_k_neighbors",
    "two_sample_ttest",
]
