"""Statistical significance testing for result tables.

The paper applies a two-tailed, two-sample Student's t-test to the best two
results of every table cell and marks the winner with † (p < 0.05) or
‡ (p < 0.01). This module reproduces that exact annotation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class TTestResult:
    statistic: float
    p_value: float

    @property
    def marker(self) -> str:
        """Paper's significance markers: '‡' p<0.01, '†' p<0.05, '' else."""
        if self.p_value < 0.01:
            return "‡"
        if self.p_value < 0.05:
            return "†"
        return ""


def two_sample_ttest(
    sample_a: np.ndarray, sample_b: np.ndarray, equal_var: bool = True
) -> TTestResult:
    """Two-tailed two-sample t-test (Student's by default, as in the paper)."""
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("each sample needs at least two observations")
    statistic, p_value = stats.ttest_ind(a, b, equal_var=equal_var)
    if np.isnan(p_value):  # identical constant samples
        return TTestResult(statistic=0.0, p_value=1.0)
    return TTestResult(statistic=float(statistic), p_value=float(p_value))


def best_two_marker(samples_by_method: dict[str, np.ndarray]) -> tuple[str, str]:
    """(best method, significance marker) for one table cell.

    ``samples_by_method`` maps method name to its per-run scores (higher is
    better). The marker annotates whether the best significantly beats the
    second best, mirroring the paper's Table 1-3 daggers.
    """
    if len(samples_by_method) < 2:
        name = next(iter(samples_by_method), "")
        return name, ""
    means = {name: float(np.mean(v)) for name, v in samples_by_method.items()}
    ranked = sorted(means, key=means.get, reverse=True)
    best, second = ranked[0], ranked[1]
    best_scores = np.asarray(samples_by_method[best])
    second_scores = np.asarray(samples_by_method[second])
    if best_scores.size < 2 or second_scores.size < 2:
        return best, ""
    result = two_sample_ttest(best_scores, second_scores)
    return best, result.marker
