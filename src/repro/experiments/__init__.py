"""Experiment harness shared by the benchmarks."""

from repro.experiments.runner import RunResult, repeat_runs, run_method
from repro.experiments.sweep import SweepPoint, SweepResult, run_sweep
from repro.experiments.tables import annotate_cell, format_mean_std, render_table

__all__ = [
    "RunResult",
    "SweepPoint",
    "SweepResult",
    "annotate_cell",
    "format_mean_std",
    "render_table",
    "repeat_runs",
    "run_method",
    "run_sweep",
]
