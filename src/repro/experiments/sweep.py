"""Hyper-parameter sweep utility used by the Figure 6 / Table 5 benches.

A ``Sweep`` runs a method factory over the cartesian product of parameter
grids, repeated over seeds, and evaluates each run with a user metric —
the generic machinery behind "vary α", "vary l", "vary strategy".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.base import DynamicEmbeddingMethod
from repro.experiments.runner import RunResult, run_method
from repro.graph.dynamic import DynamicNetwork


@dataclass
class SweepPoint:
    """One grid point's outcome."""

    params: dict
    scores: np.ndarray          # per-seed metric values
    seconds: np.ndarray         # per-seed embedding wall-clock

    @property
    def mean_score(self) -> float:
        return float(self.scores.mean())

    @property
    def mean_seconds(self) -> float:
        return float(self.seconds.mean())


@dataclass
class SweepResult:
    points: list[SweepPoint] = field(default_factory=list)

    def best(self) -> SweepPoint:
        """Grid point with the highest mean score."""
        if not self.points:
            raise ValueError("sweep produced no points")
        return max(self.points, key=lambda p: p.mean_score)

    def by_param(self, name: str) -> dict:
        """Map a single swept parameter's values to their points.

        Only meaningful when ``name`` uniquely identifies points (a 1-D
        sweep); raises otherwise.
        """
        mapping: dict = {}
        for point in self.points:
            key = point.params[name]
            if key in mapping:
                raise ValueError(
                    f"parameter {name!r} does not uniquely identify points"
                )
            mapping[key] = point
        return mapping


def run_sweep(
    factory: Callable[..., DynamicEmbeddingMethod],
    network: DynamicNetwork,
    grid: dict[str, list],
    seeds: list[int],
    metric: Callable[[RunResult, DynamicNetwork], float],
) -> SweepResult:
    """Run ``factory(seed=..., **params)`` over the grid x seeds.

    ``metric(run, network)`` maps a completed run to a scalar score
    (higher = better). Runs that report n/a raise — sweeps are meant for
    methods known to support the target network.
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    names = sorted(grid)
    result = SweepResult()
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        scores, seconds = [], []
        for seed in seeds:
            method = factory(seed=seed, **params)
            run = run_method(method, network)
            if not run.ok:
                raise RuntimeError(
                    f"sweep point {params} n/a: {run.not_available}"
                )
            scores.append(metric(run, network))
            seconds.append(run.total_seconds)
        result.points.append(
            SweepPoint(
                params=params,
                scores=np.asarray(scores),
                seconds=np.asarray(seconds),
            )
        )
    return result
