"""Experiment runner: execute a DNE method over a dynamic network.

Collects per-step embeddings and wall-clock time (embedding only — the
paper's Table 4 explicitly excludes downstream-task time), and converts
the paper's "n/a" situations (node deletions for DynLINE/tNE, memory
exhaustion for DynGEM) into a recorded reason rather than a crash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.base import (
    DynamicEmbeddingMethod,
    EmbeddingMap,
    UnsupportedDynamicsError,
)
from repro.graph.dynamic import DynamicNetwork


@dataclass
class RunResult:
    """Outcome of embedding one dynamic network with one method."""

    method_name: str
    dataset_name: str
    embeddings: list[EmbeddingMap] = field(default_factory=list)
    step_seconds: list[float] = field(default_factory=list)
    # Per-step diagnostics for methods that expose them (GloDyNE's
    # ``last_trace``); None entries for methods that do not. The CLI's
    # ``embed`` command summarises these (selected-node / pair counts).
    step_traces: list = field(default_factory=list)
    not_available: str | None = None

    @property
    def ok(self) -> bool:
        return self.not_available is None

    @property
    def total_seconds(self) -> float:
        """Wall-clock time over all time steps (Table 4 cell)."""
        return float(sum(self.step_seconds))

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Per-stage wall-clock summed over all steps.

        Aggregated from each step trace's
        :attr:`~repro.pipeline.trace.StepTrace.stage_seconds` (the
        pipeline runner's per-stage timings); empty for methods whose
        steps produced no traces.
        """
        totals: dict[str, float] = {}
        for trace in self.step_traces:
            for stage, seconds in getattr(trace, "stage_seconds", {}).items():
                totals[stage] = totals.get(stage, 0.0) + float(seconds)
        return totals


def run_method(
    method: DynamicEmbeddingMethod,
    network: DynamicNetwork,
    keep_embeddings: bool = True,
) -> RunResult:
    """Stream every snapshot through ``method``, timing each update.

    A method raising :class:`UnsupportedDynamicsError` (or ``MemoryError``)
    yields a result with ``not_available`` set — the paper's n/a cells.
    """
    result = RunResult(method_name=method.name, dataset_name=network.name)
    method.reset()
    try:
        for snapshot in network:
            start = time.perf_counter()
            embeddings = method.update(snapshot)
            result.step_seconds.append(time.perf_counter() - start)
            result.step_traces.append(getattr(method, "last_trace", None))
            if keep_embeddings:
                result.embeddings.append(embeddings)
    except UnsupportedDynamicsError as exc:
        result.not_available = str(exc)
        result.embeddings = []
    except MemoryError:
        result.not_available = "out of memory"
        result.embeddings = []
    return result


def repeat_runs(
    method_factory: Callable[[int], DynamicEmbeddingMethod],
    network: DynamicNetwork,
    seeds: list[int],
    evaluate: Callable[[RunResult], float],
) -> np.ndarray | None:
    """Run over several seeds and map each run through ``evaluate``.

    ``method_factory(seed)`` must build a freshly seeded method instance.
    Returns the per-seed scores, or ``None`` when the method is n/a on
    this network.
    """
    scores: list[float] = []
    for seed in seeds:
        run = run_method(method_factory(seed), network)
        if not run.ok:
            return None
        scores.append(evaluate(run))
    return np.asarray(scores, dtype=np.float64)
