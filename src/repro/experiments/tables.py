"""Plain-text table rendering in the paper's style (mean±std + daggers)."""

from __future__ import annotations

import numpy as np

from repro.ml.stats import best_two_marker


def format_mean_std(
    values: np.ndarray | list[float] | None,
    scale: float = 100.0,
    decimals: int = 2,
) -> str:
    """``12.34±0.56`` formatting; ``n/a`` for missing results.

    ``scale=100`` converts decimals to the paper's percentage convention.
    """
    if values is None:
        return "n/a"
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return "n/a"
    mean = arr.mean() * scale
    std = arr.std(ddof=1) * scale if arr.size > 1 else 0.0
    return f"{mean:.{decimals}f}±{std:.{decimals}f}"


def annotate_cell(
    samples_by_method: dict[str, np.ndarray | None],
) -> dict[str, str]:
    """Format one table column: mean±std per method, dagger on the winner."""
    available = {
        name: np.asarray(values)
        for name, values in samples_by_method.items()
        if values is not None and len(np.asarray(values)) > 0
    }
    formatted = {
        name: format_mean_std(values)
        for name, values in samples_by_method.items()
    }
    if len(available) >= 2:
        best, marker = best_two_marker(available)
        if marker:
            formatted[best] = formatted[best] + marker
    return formatted


def render_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Column-aligned plain-text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
