"""Thin setup shim; all metadata lives in pyproject.toml.

The offline build environment lacks the ``wheel`` package, so editable
installs must go through the legacy ``setup.py develop`` path — which
requires this file to exist.
"""

from setuptools import setup

setup()
