"""Record the stage-pipeline bit-identity goldens (tests/goldens/).

The stage-pipeline refactor's contract is that embeddings and step
traces stay bit-identical to the pre-pipeline implementations for every
engine. The fixtures under ``tests/goldens/`` were recorded by running
this script at the last pre-pipeline commit; ``tests/
test_pipeline_goldens.py`` replays the same configurations against the
pipeline and compares exactly.

Re-record (only when a deliberate behaviour change is being made)::

    PYTHONPATH=src python tools/record_pipeline_goldens.py

Each case writes one ``.npz`` holding, per step, the sorted node ids
(JSON column) and the float64 embedding matrix in that order, plus the
trace tuples ``(time_step, num_nodes, num_selected, num_pairs)`` and
the JSON-encoded selected-node lists.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "goldens"

#: Small-but-not-trivial hyper-parameters shared by every golden case.
MODEL_KWARGS = dict(
    dim=16, alpha=0.2, num_walks=3, walk_length=10, window_size=3, epochs=2
)

DATASET = dict(name="elec-sim", scale=0.25, seed=7, snapshots=4)
SEED = 3

#: (case name, method key, engine kwargs beyond MODEL_KWARGS).
CASES = [
    ("glodyne_w1_python", "glodyne", dict(workers=1, backend="python")),
    ("glodyne_w2_python", "glodyne", dict(workers=2, backend="python")),
    ("glodyne_w1_auto", "glodyne", dict(workers=1, backend="auto")),
    ("glodyne_w2_auto", "glodyne", dict(workers=2, backend="auto")),
    ("glodyne_incremental", "glodyne",
     dict(workers=1, backend="python", incremental_partition=True)),
    ("sgns_static", "sgns-static", dict(workers=1, backend="python")),
    ("sgns_retrain", "sgns-retrain", dict(workers=1, backend="python")),
    ("sgns_increment", "sgns-increment", dict(workers=1, backend="python")),
    ("tne", "tne", dict(workers=1, backend="python")),
]


def build_method(key: str, engine_kwargs: dict):
    """Fresh engine instance for one golden case."""
    from repro import (
        TNE,
        GloDyNE,
        SGNSIncrement,
        SGNSRetrain,
        SGNSStatic,
    )

    if key == "glodyne":
        return GloDyNE(seed=SEED, **MODEL_KWARGS, **engine_kwargs)
    if key == "tne":
        kwargs = {
            k: v for k, v in MODEL_KWARGS.items() if k not in ("alpha",)
        }
        return TNE(seed=SEED, **kwargs, **engine_kwargs)
    variant = {
        "sgns-static": SGNSStatic,
        "sgns-retrain": SGNSRetrain,
        "sgns-increment": SGNSIncrement,
    }[key]
    return variant(seed=SEED, **MODEL_KWARGS, **engine_kwargs)


def run_case(method, network) -> dict[str, np.ndarray]:
    """Run one engine over the network and flatten outputs for ``np.savez``."""
    arrays: dict[str, np.ndarray] = {}
    for i, snapshot in enumerate(network):
        embeddings = method.update(snapshot)
        nodes = sorted(embeddings, key=repr)
        arrays[f"step{i}_nodes"] = np.array(
            [json.dumps(n) for n in nodes], dtype=object
        )
        arrays[f"step{i}_matrix"] = np.stack(
            [embeddings[n] for n in nodes]
        ).astype(np.float64)
        trace = getattr(method, "last_trace", None)
        if trace is not None:
            arrays[f"step{i}_trace"] = np.array(
                [trace.time_step, trace.num_nodes, trace.num_selected,
                 trace.num_pairs],
                dtype=np.int64,
            )
            arrays[f"step{i}_selected"] = np.array(
                [json.dumps(n) for n in trace.selected_nodes], dtype=object
            )
    arrays["num_steps"] = np.array([network.num_snapshots])
    return arrays


def record_snapshot_cases() -> None:
    """The snapshot-mode engines: GloDyNE grid, the variants, TNE."""
    from repro.datasets import load_dataset

    network = load_dataset(
        DATASET["name"], scale=DATASET["scale"], seed=DATASET["seed"],
        snapshots=DATASET["snapshots"],
    )
    for case, key, engine_kwargs in CASES:
        method = build_method(key, engine_kwargs)
        arrays = run_case(method, network)
        path = GOLDEN_DIR / f"{case}.npz"
        np.savez(path, **arrays)
        print(f"recorded {path.name}: {len(arrays)} arrays")


def record_streaming_case() -> None:
    """Flush-per-snapshot streaming over a deterministic event stream."""
    from repro.datasets import interaction_stream
    from repro.streaming import StreamingGloDyNE, split_stream_at_cutoffs

    steps = 4
    events = interaction_stream(
        num_nodes=60, num_steps=steps, num_communities=3,
        events_per_step=30, seed=11,
    )
    cutoffs = [float(t) for t in range(steps)]
    engine = StreamingGloDyNE(seed=SEED, **MODEL_KWARGS)
    arrays: dict[str, np.ndarray] = {}
    for i, window in enumerate(split_stream_at_cutoffs(events, cutoffs)):
        engine.ingest_many(window)
        result = engine.flush()
        nodes = sorted(result.embeddings, key=repr)
        arrays[f"step{i}_nodes"] = np.array(
            [json.dumps(n) for n in nodes], dtype=object
        )
        arrays[f"step{i}_matrix"] = np.stack(
            [result.embeddings[n] for n in nodes]
        ).astype(np.float64)
        trace = result.trace
        arrays[f"step{i}_trace"] = np.array(
            [trace.time_step, trace.num_nodes, trace.num_selected,
             trace.num_pairs],
            dtype=np.int64,
        )
        arrays[f"step{i}_selected"] = np.array(
            [json.dumps(n) for n in trace.selected_nodes], dtype=object
        )
    arrays["num_steps"] = np.array([steps])
    path = GOLDEN_DIR / "streaming_flush.npz"
    np.savez(path, **arrays)
    print(f"recorded {path.name}: {len(arrays)} arrays")


def main() -> None:
    """Record every golden case into ``tests/goldens/``."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    record_snapshot_cases()
    record_streaming_case()


if __name__ == "__main__":
    main()
