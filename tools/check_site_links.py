"""Link-check a built mkdocs site: every local href/src must resolve.

``mkdocs build --strict`` already fails on broken *markdown* links; this
crawl runs over the rendered HTML instead, so anything the theme or
mkdocstrings injected is covered too and the uploaded site artifact is
known link-clean. External (``http``/``https``/``mailto``) targets are
out of scope — CI should not depend on third-party uptime.

Usage::

    python tools/check_site_links.py site
"""

from __future__ import annotations

import sys
from html.parser import HTMLParser
from pathlib import Path
from urllib.parse import unquote, urlsplit


class _RefCollector(HTMLParser):
    """Collect every href/src attribute value from one HTML document."""

    def __init__(self) -> None:
        super().__init__()
        self.refs: list[str] = []

    def handle_starttag(self, tag, attrs):  # noqa: D102 (HTMLParser hook)
        for name, value in attrs:
            if name in ("href", "src") and value:
                self.refs.append(value)


def _resolve(page: Path, ref: str, site: Path) -> Path | None:
    """Map a local ref to the filesystem path it should point at."""
    parts = urlsplit(ref)
    if parts.scheme or parts.netloc:
        return None  # external: not checked
    path = unquote(parts.path)
    if not path:
        return None  # pure fragment (#anchor)
    base = site if path.startswith("/") else page.parent
    target = (base / path.lstrip("/")).resolve()
    if path.endswith("/"):
        target = target / "index.html"
    return target


def check_site(site: Path) -> list[str]:
    """Return ``page -> ref`` descriptions for every dangling local ref."""
    broken: list[str] = []
    for page in sorted(site.rglob("*.html")):
        collector = _RefCollector()
        collector.feed(page.read_text(encoding="utf-8", errors="replace"))
        for ref in collector.refs:
            target = _resolve(page, ref, site)
            if target is not None and not target.exists():
                broken.append(f"{page.relative_to(site)}: {ref}")
    return broken


def main(argv: list[str]) -> int:
    """CLI entry point: exit 1 when any local reference dangles."""
    site = Path(argv[1] if len(argv) > 1 else "site").resolve()
    pages = len(list(site.rglob("*.html")))
    if not pages:
        print(f"no HTML under {site} — build the site first", file=sys.stderr)
        return 1
    broken = check_site(site)
    if broken:
        print("dangling local references:", file=sys.stderr)
        for entry in broken:
            print(f"  {entry}", file=sys.stderr)
        return 1
    print(f"link-check OK: {pages} pages, no dangling local references")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
